//! E13 — dynamics: convergence to small worlds, and polynomial
//! equilibrium detection.
//!
//! The paper motivates swap equilibria as the natural notion for
//! computationally bounded agents: detection is polynomial (vs NP-hard
//! Nash), and greedy play should *reach* them. The tables report (i)
//! convergence statistics of the engine across sizes, schedules and
//! objectives, (ii) the small-world statistics of the endpoints, and
//! (iii) measured wall-clock scaling of the equilibrium checker.

use std::time::Instant;

use bncg_analysis::smallworld::SmallWorldStats;
use bncg_core::equilibrium::SumGame;
use bncg_core::objective::{MaxObjective, SumObjective};
use bncg_dynamics::batch::{
    run_batch, run_round_batch, BatchConfig, RoundBatchConfig, StartFamily,
};
use bncg_dynamics::engine::{DynamicsConfig, Schedule};
use bncg_dynamics::rounds::RoundConfig;
use bncg_dynamics::SwapDynamics;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::md::{f3, Table};

/// Streams one round-engine run under a `--game` variant rule set into
/// the report (and `--metrics`, when set). The basic game keeps its own
/// traced path in [`run`] so the default report stays byte-stable.
fn variant_stream<R: bncg_core::rules::GameRules>(
    out: &mut String,
    opts: &super::RunOpts,
    start: &bncg_graph::Graph,
    n: usize,
    rules: R,
) {
    let game = rules.name().to_string();
    let mut sink = bncg_dynamics::MemorySink::new();
    let engine_label = if opts.pipelined {
        let engine =
            bncg_dynamics::PipelinedRoundDynamics::with_rules(RoundConfig::default(), rules);
        let _ = engine.run_with_sink(start, &mut sink);
        "pipelined round engine"
    } else {
        let engine = bncg_dynamics::RoundDynamics::with_rules(RoundConfig::default(), rules);
        let _ = engine.run_with_sink(start, &mut sink);
        "round engine"
    };
    out.push_str(&format!(
        "\nStreaming round records (one {engine_label}, game `{game}`, n = {n}):\n\n"
    ));
    out.push_str(&crate::md::round_summary(&sink.records));
    write_metrics(out, opts, &sink.records);
}

/// Persists a record stream as JSON Lines when `--metrics` is set.
fn write_metrics(out: &mut String, opts: &super::RunOpts, records: &[bncg_dynamics::RoundRecord]) {
    let Some(path) = &opts.metrics else { return };
    match std::fs::File::create(path) {
        Ok(file) => {
            let mut jsonl = bncg_dynamics::JsonlSink::new(std::io::BufWriter::new(file));
            for record in records {
                bncg_dynamics::MetricsSink::record_round(&mut jsonl, record);
            }
            bncg_dynamics::MetricsSink::finish(&mut jsonl);
            match jsonl.error() {
                None => out.push_str(&format!(
                    "\n{} round records written to `{}`.\n",
                    records.len(),
                    path.display()
                )),
                Some(e) => {
                    eprintln!("--metrics write to {} failed: {e}", path.display());
                    super::note_metrics_failure();
                }
            }
        }
        Err(e) => {
            eprintln!("--metrics cannot create {}: {e}", path.display());
            super::note_metrics_failure();
        }
    }
}

/// Crash-safe service run under any rule set: `--journal` makes the
/// round service write-ahead-log every barrier (recoverable via
/// `--resume`, which checks the journal's game tag against `rules`),
/// `--audit-every` adds the divergence audit with row-level healing.
fn service_lab<R: bncg_core::rules::GameRules>(
    out: &mut String,
    opts: &super::RunOpts,
    start: &bncg_graph::Graph,
    rules: R,
) {
    if opts.journal.is_none() && opts.resume.is_none() && opts.audit_every == 0 {
        return;
    }
    out.push_str("\nCrash-safe round service run:\n\n");
    use bncg_dynamics::{AuditPolicy, JournalOptions, NullSink, RoundService};
    let mut service = if let Some(path) = &opts.resume {
        match RoundService::resume_with_rules(path, bncg_graph::RepairStrategy::default(), rules) {
            Ok((service, report)) => {
                out.push_str(&format!(
                    "- resumed from `{}`: {} journal records, {} rounds replayed{}{}{}\n",
                    path.display(),
                    report.records,
                    report.rounds_replayed,
                    if report.used_checkpoint {
                        " (from last checkpoint)"
                    } else {
                        ""
                    },
                    if report.truncated_tail {
                        ", torn tail truncated"
                    } else {
                        ""
                    },
                    match report.midsession {
                        Some(done) => format!(", mid-session at round {done}"),
                        None => String::new(),
                    },
                ));
                service
            }
            Err(e) => {
                eprintln!("--resume from {} failed: {e}", path.display());
                std::process::exit(1);
            }
        }
    } else {
        let mut service = RoundService::with_rules(
            start,
            bncg_dynamics::ServiceConfig {
                pipelined: opts.pipelined,
                ..Default::default()
            },
            bncg_graph::RepairStrategy::default(),
            rules,
        );
        if let Some(path) = &opts.journal {
            if let Err(e) = service.attach_journal(path, JournalOptions::default()) {
                eprintln!("--journal cannot create {}: {e}", path.display());
                std::process::exit(1);
            }
            out.push_str(&format!("- journaling to `{}`\n", path.display()));
        }
        service
    };
    if opts.audit_every > 0 {
        service.set_audit_policy(AuditPolicy {
            every_rounds: opts.audit_every,
            ..Default::default()
        });
    }
    let report = service.run_session(&mut NullSink);
    out.push_str(&format!(
        "- session: {:?} after {} rounds, {} moves applied\n",
        report.result.outcome, report.result.rounds, report.result.moves_applied,
    ));
    if opts.audit_every > 0 {
        let stats = service.audit_stats();
        out.push_str(&format!(
            "- audits: {} checks, {} row mismatches, {} rows healed\n",
            stats.checks, stats.row_mismatches, stats.heals,
        ));
    }
    if let Some(e) = service.journal_error() {
        eprintln!("journal stream degraded: {e}");
        super::note_metrics_failure();
    }
}

/// Renders a sparse histogram (`index×count` pairs) or `—` when empty.
fn hist_cell(hist: &[usize]) -> String {
    let cells: Vec<String> = hist
        .iter()
        .enumerate()
        .filter(|(_, c)| **c > 0)
        .map(|(p, c)| format!("{p}\u{00d7}{c}"))
        .collect();
    if cells.is_empty() {
        "—".into()
    } else {
        cells.join(" ")
    }
}

/// Runs E13 and renders the report.
pub fn run(opts: &super::RunOpts) -> String {
    let quick = opts.quick;
    let sizes: &[usize] = if quick { &[16, 32] } else { &[16, 32, 64, 128] };
    let runs = if quick { 8 } else { 16 };
    let mut out = String::from("## E13 — dynamics converge to small-world equilibria\n\n");
    let mut t = Table::new(vec![
        "n",
        "objective",
        "schedule",
        "converged",
        "mean rounds",
        "mean moves",
        "mean final diameter",
        "audit cache hit/miss",
    ]);
    for &n in sizes {
        for (obj_name, is_sum) in [("sum", true), ("max", false)] {
            for schedule in [Schedule::RoundRobin, Schedule::RandomPermutation] {
                let config = BatchConfig {
                    n,
                    start: StartFamily::RandomConnected(n / 4),
                    runs,
                    base_seed: 0xE13 + n as u64,
                    dynamics: DynamicsConfig {
                        schedule,
                        ..DynamicsConfig::default()
                    },
                };
                let summary = if is_sum {
                    run_batch::<SumObjective>(config)
                } else {
                    run_batch::<MaxObjective>(config)
                };
                t.row(vec![
                    n.to_string(),
                    obj_name.to_string(),
                    format!("{schedule:?}"),
                    format!("{}/{}", summary.converged, runs),
                    f3(summary.mean_rounds),
                    f3(summary.mean_moves),
                    f3(summary.mean_final_diameter),
                    format!(
                        "{}/{}",
                        summary.audit_cache_hits, summary.audit_cache_misses
                    ),
                ]);
            }
        }
    }
    out.push_str(&t.render());

    // Round-based (frozen-snapshot) vs sequential semantics on the same
    // seeded starts: simultaneous play can oscillate (cycled runs report
    // their revisit period) where sequential play converges.
    out.push_str(
        "\nRound-based (frozen-snapshot) dynamics vs the sequential engine \
         (same starts, deterministic lowest-agent conflict resolution):\n\n",
    );
    let mut rt = Table::new(vec![
        "n",
        "objective",
        "round converged",
        "oscillated",
        "cycle periods",
        "mean rounds",
        "mean applied moves",
        "mean final diameter",
    ]);
    for &n in sizes {
        for (obj_name, is_sum) in [("sum", true), ("max", false)] {
            let config = RoundBatchConfig {
                n,
                start: StartFamily::RandomConnected(n / 4),
                runs,
                base_seed: 0xE13 + n as u64,
                rounds: RoundConfig::default(),
            };
            let summary = if is_sum {
                run_round_batch::<SumObjective>(config)
            } else {
                run_round_batch::<MaxObjective>(config)
            };
            rt.row(vec![
                n.to_string(),
                obj_name.to_string(),
                format!("{}/{}", summary.converged, runs),
                summary.cycled.to_string(),
                hist_cell(&summary.cycle_period_hist),
                f3(summary.mean_rounds),
                f3(summary.mean_moves),
                f3(summary.mean_final_diameter),
            ]);
        }
    }
    out.push_str(&rt.render());

    // Small-world statistics of one endpoint per size.
    out.push_str("\nSmall-world statistics of sum-dynamics endpoints (start: ring lattice WS(k=4, β=0)):\n\n");
    let mut sw = Table::new(vec![
        "n",
        "start diameter",
        "final diameter",
        "start mean dist",
        "final mean dist",
        "final clustering",
    ]);
    for &n in sizes {
        let mut rng = StdRng::seed_from_u64(0x5_u64 + n as u64);
        let start = bncg_graph::generators::random::watts_strogatz(&mut rng, n, 4, 0.0);
        let before = SmallWorldStats::compute(&start);
        let engine = SwapDynamics::<SumObjective>::new(DynamicsConfig::default());
        let result = engine.run(&start, &mut rng);
        let after = SmallWorldStats::compute(&result.graph);
        if let (Some(b), Some(a)) = (before, after) {
            sw.row(vec![
                n.to_string(),
                b.diameter.to_string(),
                a.diameter.to_string(),
                f3(b.mean_distance),
                f3(a.mean_distance),
                f3(a.clustering),
            ]);
        }
    }
    out.push_str(&sw.render());

    // Checker wall-clock scaling (the "polynomial-time detection" claim).
    out.push_str("\nEquilibrium-checker wall clock (full sum-equilibrium audit):\n\n");
    let mut wc = Table::new(vec!["n", "m", "time"]);
    for &n in sizes {
        let mut rng = StdRng::seed_from_u64(0xC1 + n as u64);
        let g = bncg_graph::generators::random::random_connected(&mut rng, n, n / 2);
        let start = Instant::now();
        let _ = SumGame::is_equilibrium(&g);
        wc.row(vec![
            n.to_string(),
            g.m().to_string(),
            format!("{:.2?}", start.elapsed()),
        ]);
    }
    out.push_str(&wc.render());

    // Streaming round-stats pipeline: one traced round-based run per
    // largest size, every round emitted as a structured record. The
    // summary table digests the stream; `--metrics <path>` additionally
    // persists it as JSON Lines. `--game` swaps the rule set the
    // streaming run and the crash-safe service play.
    let n = *sizes.last().expect("sizes is non-empty");
    let mut rng = StdRng::seed_from_u64(0x713 + n as u64);
    let start = bncg_graph::generators::random::random_connected(&mut rng, n, n / 4);
    match opts.game {
        super::GameChoice::Basic => {
            let mut sink = bncg_dynamics::MemorySink::new();
            let engine_label = if opts.pipelined {
                // `--pipelined`: the same stream through the overlapped round
                // engine — byte-identical records (phase timings aside), every
                // barrier overlapping repair with the next proposal sweep.
                let engine = bncg_dynamics::PipelinedRoundDynamics::<SumObjective>::new(
                    RoundConfig::default(),
                );
                let _ = engine.run_with_sink(&start, &mut sink);
                "pipelined round engine"
            } else {
                let _ = bncg_dynamics::run_traced_rounds_with_sink::<SumObjective>(
                    &start,
                    bncg_dynamics::Response::Best,
                    RoundConfig::default().max_rounds,
                    &mut sink,
                );
                "traced round-based run"
            };
            out.push_str(&format!(
                "\nStreaming round records (one {engine_label}, n = {n}):\n\n"
            ));
            out.push_str(&crate::md::round_summary(&sink.records));
            write_metrics(&mut out, opts, &sink.records);
            service_lab(&mut out, opts, &start, SumObjective);
        }
        super::GameChoice::Budget(cap) => {
            let rules =
                bncg_core::rules::BoundedBudgetGame::<SumObjective>::uniform(start.n(), cap);
            variant_stream(&mut out, opts, &start, n, rules.clone());
            service_lab(&mut out, opts, &start, rules);
        }
        super::GameChoice::Interest(k) => {
            let rules = bncg_core::rules::InterestGame::ring(start.n(), k);
            variant_stream(&mut out, opts, &start, n, rules.clone());
            service_lab(&mut out, opts, &start, rules);
        }
        super::GameChoice::TwoNeighborhood => {
            let rules = bncg_core::rules::TwoNeighborhoodGame;
            variant_stream(&mut out, opts, &start, n, rules);
            service_lab(
                &mut out,
                opts,
                &start,
                bncg_core::rules::TwoNeighborhoodGame,
            );
        }
    }

    out.push_str(
        "\nShape check: every run converges (no cycles observed), in a \
         handful of rounds; endpoints are diameter-2/3 small worlds \
         regardless of the high-diameter starting lattice; and the full \
         equilibrium audit runs in polynomial time at every size — the \
         tractability contrast with NP-hard Nash detection that motivates \
         the basic game.\n",
    );
    out
}
