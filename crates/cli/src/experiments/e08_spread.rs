//! E8 — Lemma 2: local diameters of a max equilibrium differ by ≤ 1.
//!
//! Audited across every max equilibrium this reproduction can produce
//! (stars, double stars, tori of both dimensions, complete graphs), plus
//! contrast graphs that are *not* max equilibria and spread freely.

use bncg_constructions::torus::{multi_torus, rotated_torus};
use bncg_core::equilibrium::MaxGame;
use bncg_core::lemmas::{lemma2_holds, lemma3_holds, local_diameter_spread};
use bncg_graph::generators::classic;
use bncg_graph::{DistanceMatrix, Graph};

use crate::md::{ok, Table};

fn row(name: &str, g: &Graph, t: &mut Table) {
    let dm = DistanceMatrix::build(&g.to_csr());
    let eq = MaxGame::is_equilibrium(g);
    let spread = local_diameter_spread(&dm).unwrap();
    t.row(vec![
        name.to_string(),
        g.n().to_string(),
        ok(eq),
        spread.to_string(),
        ok(!eq || lemma2_holds(&dm)),
        ok(!eq || lemma3_holds(g)),
    ]);
}

/// Runs E8 and renders the report.
pub fn run(opts: &super::RunOpts) -> String {
    let quick = opts.quick;
    let mut out = String::from(
        "## E8 — Lemma 2 (spread ≤ 1) and Lemma 3 (cut vertices) in max equilibria\n\n",
    );
    let mut t = Table::new(vec![
        "graph",
        "n",
        "max equilibrium",
        "ecc spread",
        "Lemma 2 consistent",
        "Lemma 3 consistent",
    ]);
    row("star(9)", &classic::star(9), &mut t);
    row("double_star(2,2)", &classic::double_star(2, 2), &mut t);
    row("double_star(4,6)", &classic::double_star(4, 6), &mut t);
    row("K_6", &classic::complete(6), &mut t);
    row("rotated_torus(3)", &rotated_torus(3), &mut t);
    row("rotated_torus(4)", &rotated_torus(4), &mut t);
    if !quick {
        row("rotated_torus(5)", &rotated_torus(5), &mut t);
        row("multi_torus(3,3)", &multi_torus(3, 3), &mut t);
    }
    // Contrast: not equilibria, spreads can be large (the lemma doesn't
    // apply — the rows only check consistency *when* in equilibrium).
    row("path(12) [not eq]", &classic::path(12), &mut t);
    row("lollipop(5,6) [not eq]", &classic::lollipop(5, 6), &mut t);
    out.push_str(&t.render());
    out.push_str(
        "\nEvery max equilibrium has spread ≤ 1 exactly as Lemma 2 requires; \
         non-equilibria (path, lollipop) spread arbitrarily, confirming the \
         lemma is a real structural constraint rather than a triviality.\n",
    );
    out
}
