//! The thirteen experiments of the reproduction (see DESIGN.md §3).

/// Options handed to every experiment runner.
#[derive(Debug, Clone, Default)]
pub struct RunOpts {
    /// Reduced-scale run (`bncg quick` / `--quick`).
    pub quick: bool,
    /// When set, experiments with a streaming round-record pipeline (E13)
    /// write one JSON Lines [`bncg_dynamics::RoundRecord`] per dynamics
    /// round to this path (`--metrics <path>`); the others ignore it.
    pub metrics: Option<std::path::PathBuf>,
    /// Route round-based dynamics through the pipelined engine
    /// ([`bncg_dynamics::PipelinedRoundDynamics`], `--pipelined`):
    /// byte-identical records and endpoints, with the next round's
    /// proposal sweep overlapped against each barrier repair.
    pub pipelined: bool,
    /// When set, E13's service run journals every round barrier to this
    /// path (`--journal <path>`), making the run crash-recoverable via
    /// `--resume`.
    pub journal: Option<std::path::PathBuf>,
    /// When set, E13 resumes a crashed/killed journaled run from this
    /// path (`--resume <path>`) instead of starting fresh, and reports
    /// the recovery statistics.
    pub resume: Option<std::path::PathBuf>,
    /// When nonzero, E13's service run audits a rotating stripe of the
    /// maintained distance matrix against fresh BFS every this many
    /// rounds (`--audit-every <k>`), self-healing divergent rows.
    pub audit_every: usize,
    /// Which rule set E13's streaming run and crash-safe service play
    /// (`--game <name>`). Every other experiment is pinned to the basic
    /// game whose theorems it reproduces and ignores this.
    pub game: GameChoice,
}

/// A `--game` selection: one of the shipped [`GameRules`] sets.
///
/// [`GameRules`]: bncg_core::rules::GameRules
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum GameChoice {
    /// The basic AlonDHL10 game under the sum objective (the default).
    #[default]
    Basic,
    /// Bounded-budget variant
    /// ([`BoundedBudgetGame`](bncg_core::rules::BoundedBudgetGame)):
    /// a uniform per-vertex edge budget of this many endpoints.
    Budget(u32),
    /// Communication-interest variant
    /// ([`InterestGame`](bncg_core::rules::InterestGame)): ring interest
    /// sets of this half-width.
    Interest(usize),
    /// 2-neighborhood variant
    /// ([`TwoNeighborhoodGame`](bncg_core::rules::TwoNeighborhoodGame)):
    /// purely local costs, no distance matrix maintained.
    TwoNeighborhood,
}

impl GameChoice {
    /// Parses a `--game` argument: `basic`, `budget[:cap]` (default cap
    /// 3), `interest[:k]` (default half-width 3), or `2nb`.
    pub fn parse(s: &str) -> Option<Self> {
        let (head, tail) = match s.split_once(':') {
            Some((h, t)) => (h, Some(t)),
            None => (s, None),
        };
        match (head, tail) {
            ("basic", None) => Some(GameChoice::Basic),
            ("budget", None) => Some(GameChoice::Budget(3)),
            ("budget", Some(t)) => t.parse().ok().map(GameChoice::Budget),
            ("interest", None) => Some(GameChoice::Interest(3)),
            ("interest", Some(t)) => t.parse().ok().map(GameChoice::Interest),
            ("2nb", None) => Some(GameChoice::TwoNeighborhood),
            _ => None,
        }
    }
}

/// Records that a `--metrics` stream was lost to an I/O error (a full
/// disk, a bad path). Experiment runners return their report regardless —
/// the tables are still good — but `main` checks this flag afterwards and
/// exits nonzero, so scripted pipelines cannot mistake a silently dropped
/// JSONL stream for a complete one.
pub fn note_metrics_failure() {
    METRICS_FAILED.store(true, std::sync::atomic::Ordering::Relaxed);
}

/// Whether any runner reported a lost `--metrics` stream.
pub fn metrics_failed() -> bool {
    METRICS_FAILED.load(std::sync::atomic::Ordering::Relaxed)
}

static METRICS_FAILED: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

pub mod e01_tree_census;
pub mod e02_max_trees;
pub mod e03_fig3;
pub mod e04_sum_diameter;
pub mod e05_insertion_gain;
pub mod e06_torus;
pub mod e07_multidim;
pub mod e08_spread;
pub mod e09_uniformity;
pub mod e10_spider;
pub mod e11_cayley;
pub mod e12_alpha;
pub mod e13_convergence;

/// One-line description per experiment id.
pub fn description(name: &str) -> &'static str {
    match name {
        "e1" => "Theorem 1: exhaustive tree census — sum-equilibrium trees are stars",
        "e2" => "Theorem 4 / Figure 2: max-equilibrium trees have diameter <= 3",
        "e3" => "Theorem 5 / Figure 3: diameter-3 sum equilibrium (erratum + repair)",
        "e4" => "Theorem 9: sum-equilibrium diameters and ball growth",
        "e5" => "Lemma 10 / Corollary 11: insertion-gain audits on sum equilibria",
        "e6" => "Theorem 12 / Figure 4: the rotated torus is a Θ(√n)-diameter max equilibrium",
        "e7" => "Section 4: d-dimensional tori and the k-insertion stability trade-off",
        "e8" => "Lemma 2: local diameters in max equilibria differ by at most 1",
        "e9" => "Theorem 13: power graphs of equilibria become distance-(almost-)uniform",
        "e10" => "Section 5 remark: the spider — pairwise uniformity is not enough",
        "e11" => "Theorem 15: distance-uniform Abelian Cayley graphs have small diameter",
        "e12" => "Baseline: the alpha-game — PoA vs diameter, for every alpha at once",
        "e13" => "Dynamics: convergence behavior and polynomial equilibrium detection",
        _ => "unknown",
    }
}
