//! E7 — Section 4's d-dimensional generalization.
//!
//! Paper claims: the `d`-dimensional torus (`n = 2k^d`) has diameter
//! `Θ(n^{1/d})`, is deletion-critical, and is stable under the insertion
//! (or swapping) of up to `d − 1` edges at one vertex — a smooth
//! trade-off between agent power `k` and equilibrium diameter
//! `Ω(n^{1/(k+1)})`.

use bncg_constructions::torus::{multi_torus, MultiTorus};
use bncg_core::kswap::k_swap_audit;
use bncg_core::stability::{deletion_critical_violation, min_insertions_to_shrink_ecc};
use bncg_graph::{DistanceMatrix, V};

use crate::md::{f3, ok, Table};

/// Runs E7 and renders the report.
pub fn run(opts: &super::RunOpts) -> String {
    let quick = opts.quick;
    let cases: &[(usize, usize)] = if quick {
        &[(2, 3), (2, 4), (3, 2), (3, 3)]
    } else {
        &[
            (2, 3),
            (2, 4),
            (2, 6),
            (3, 2),
            (3, 3),
            (3, 4),
            (4, 2),
            (4, 3),
        ]
    };
    let mut out =
        String::from("## E7 — d-dimensional tori: diameter Θ(n^{1/d}) vs agent power\n\n");
    let mut t = Table::new(vec![
        "d",
        "k",
        "n = 2k^d",
        "diameter",
        "n^{1/d}",
        "metric = closed form",
        "deletion-critical",
        "min insertions to shrink ecc(v₀)",
        "stable under d−1 insertions",
        "stable under d−1 SWAPS (exact)",
    ]);
    for &(d, k) in cases {
        let g = multi_torus(d, k);
        let helper = MultiTorus::new(d, k);
        let dm = DistanceMatrix::build(&g.to_csr());
        let diameter = dm.diameter().unwrap();
        // Spot-check the closed-form metric from vertex 0 (full check for
        // small n).
        let metric_ok = if g.n() <= 300 {
            (0..g.n() as V)
                .all(|u| (0..g.n() as V).all(|w| dm.get(u, w) as usize == helper.distance(u, w)))
        } else {
            (0..g.n() as V).all(|w| dm.get(0, w) as usize == helper.distance(0, w))
        };
        let dc = deletion_critical_violation(&g).is_none();
        // Vertex-transitive: audit k-insertion and exact k-swap stability
        // at vertex 0 (the paper's own symmetry reduction).
        let min_ins = min_insertions_to_shrink_ecc(&dm, 0, d + 1);
        let stable_dm1 = min_ins.is_none_or(|m| m > d - 1);
        let swap_stable = k_swap_audit(&g, 0, d - 1).is_stable();
        t.row(vec![
            d.to_string(),
            k.to_string(),
            g.n().to_string(),
            diameter.to_string(),
            f3((g.n() as f64).powf(1.0 / d as f64)),
            ok(metric_ok),
            ok(dc),
            min_ins.map_or("> d+1".into(), |m| m.to_string()),
            ok(stable_dm1),
            ok(swap_stable),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\nShape check: diameter equals k = (n/2)^{1/d} at every size — the \
         Θ(n^{1/d}) family — and shrinking a local diameter needs at least d \
         simultaneous insertions, matching the paper's claim of stability \
         under d − 1 edge changes (the trade-off Ω(n^{1/(k+1)}) with agent \
         power k = d − 1).\n",
    );
    out
}
