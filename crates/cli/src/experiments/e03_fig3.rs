//! E3 — Theorem 5 / Figure 3: the diameter-3 sum equilibrium, with the
//! erratum this reproduction uncovered and the repaired witness.

use bncg_constructions::catalog_support::parity_triples_all_odd;
use bncg_constructions::fig3::{
    fig3_graph, fig3_printed_witness, fig3_straight_variant, generalized_fig3, repaired_fig3,
};
use bncg_core::equilibrium::SumGame;
use bncg_core::objective::SumObjective;
use bncg_core::verify::{reference_cost, reference_is_sum_equilibrium};
use bncg_graph::girth::girth;
use bncg_graph::{DistanceMatrix, Graph};

use crate::md::{ok, Table};

fn audit(name: &str, g: &Graph, t: &mut Table) {
    let dm = DistanceMatrix::build(&g.to_csr());
    let fast = SumGame::is_equilibrium(g);
    let reference = reference_is_sum_equilibrium(g);
    t.row(vec![
        name.to_string(),
        g.n().to_string(),
        g.m().to_string(),
        dm.diameter().map_or("∞".into(), |d| d.to_string()),
        girth(g).map_or("—".into(), |x| x.to_string()),
        ok(fast),
        ok(reference),
    ]);
}

/// Runs E3 and renders the report.
pub fn run(_opts: &super::RunOpts) -> String {
    let mut out = String::from(
        "## E3 — Theorem 5 / Figure 3: a diameter-3 sum equilibrium (erratum + repair)\n\n",
    );
    let mut t = Table::new(vec![
        "graph",
        "n",
        "m",
        "diameter",
        "girth",
        "sum eq (fast)",
        "sum eq (reference)",
    ]);
    audit("Figure 3 as printed", &fig3_graph(), &mut t);
    audit(
        "straight-matching variant",
        &fig3_straight_variant(),
        &mut t,
    );
    audit("repaired (4 branches)", &repaired_fig3(), &mut t);
    out.push_str(&t.render());

    // The erratum witness, in numbers.
    let g = fig3_graph();
    let w = fig3_printed_witness();
    let before = reference_cost::<SumObjective>(&g, w.v);
    let mut h = g.clone();
    w.apply(&mut h);
    let after = reference_cost::<SumObjective>(&h, w.v);
    out.push_str(&format!(
        "\n**Erratum.** In the printed graph, agent d₁ (vertex {}) strictly \
         improves by swapping d₁c₁,₁ → d₁c₂,₁: sum of distances {before} → \
         {after}. The published proof's dᵢ case charges a ≥2 loss via \
         Lemma 8, but the swap target is c₁,₁'s *matched partner*, which \
         Lemma 8 itself exempts (adjacent targets lose only ≥1).\n",
        w.v
    ));

    // The lemmas themselves are fine — the slip is in their application.
    let lemmas_ok = bncg_core::lemmas::lemma6_holds(&g)
        && bncg_core::lemmas::lemma7_holds(&g)
        && bncg_core::lemmas::lemma8_holds(&g);
    out.push_str(&format!(
        "\nLemmas 6–8 audited directly on the printed graph: all hold ({}) — \
         the erratum is in the *application* of Lemma 8 (its adjacency \
         exception), not in the lemmas.\n",
        crate::md::ok(lemmas_ok)
    ));

    // The parity scan that pins the repair condition.
    let pairs = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];
    let mut eq_odd = 0;
    let mut eq_even = 0;
    let mut neq_odd = 0;
    let mut neq_even = 0;
    for code in 0u32..64 {
        let crossed: Vec<(usize, usize)> = pairs
            .iter()
            .enumerate()
            .filter(|(bit, _)| code & (1 << bit) != 0)
            .map(|(_, &p)| p)
            .collect();
        let g = generalized_fig3(4, &crossed);
        let all_odd = parity_triples_all_odd(4, &crossed);
        match (SumGame::is_equilibrium(&g), all_odd) {
            (true, true) => eq_odd += 1,
            (true, false) => eq_even += 1,
            (false, true) => neq_odd += 1,
            (false, false) => neq_even += 1,
        }
    }
    out.push_str(&format!(
        "\n**Repair.** Four branches (n = 17, m = 32) restore the theorem. \
         Scanning all 64 matching-parity patterns: {eq_odd} equilibria, all \
         with every branch-triple odd; {neq_even} non-equilibria with some \
         even triple; cross cases: {eq_even}/{neq_odd} (both must be 0 for \
         the iff). Theorem 5's statement — *a diameter-3 sum equilibrium \
         exists* — survives with the repaired witness.\n",
    ));
    out
}
