//! E4 — Theorem 9: diameters of sum equilibria, with the ball-growth
//! audit.
//!
//! Paper claim: sum equilibria have diameter `2^O(√lg n)`. Empirically,
//! every equilibrium the dynamics reach has tiny diameter (the paper
//! itself notes all known examples have diameter ≤ 3); the table reports
//! the measured maxima against the theorem's envelope, and audits
//! inequality (1) on each final network.

use bncg_analysis::growth::ball_growth_ladder;
use bncg_core::objective::SumObjective;
use bncg_dynamics::batch::{run_batch, BatchConfig, StartFamily};
use bncg_dynamics::engine::DynamicsConfig;
use bncg_dynamics::{Outcome, SwapDynamics};
use bncg_graph::DistanceMatrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::md::{f3, ok, Table};

/// Runs E4 and renders the report.
pub fn run(opts: &super::RunOpts) -> String {
    let quick = opts.quick;
    let sizes: &[usize] = if quick {
        &[16, 32, 64]
    } else {
        &[16, 32, 64, 128, 256]
    };
    let runs = if quick { 8 } else { 16 };
    let mut out = String::from("## E4 — Theorem 9: sum-equilibrium diameters are 2^O(√lg n)\n\n");
    let mut t = Table::new(vec![
        "n",
        "start",
        "runs converged",
        "mean final diameter",
        "max final diameter",
        "2^√lg n (envelope)",
        "within envelope",
    ]);
    for &n in sizes {
        for (label, family) in [
            ("tree", StartFamily::RandomTree),
            ("tree+n/4 edges", StartFamily::RandomConnected(n / 4)),
        ] {
            let summary = run_batch::<SumObjective>(BatchConfig {
                n,
                start: family,
                runs,
                base_seed: 0xE4 + n as u64,
                dynamics: DynamicsConfig::default(),
            });
            let envelope = 2f64.powf((n as f64).log2().sqrt());
            t.row(vec![
                n.to_string(),
                label.to_string(),
                format!("{}/{}", summary.converged, runs),
                f3(summary.mean_final_diameter),
                summary.max_final_diameter.to_string(),
                f3(envelope),
                ok(f64::from(summary.max_final_diameter) <= envelope.max(3.0)),
            ]);
        }
    }
    out.push_str(&t.render());

    // Ball-growth inequality audit on a handful of final equilibria.
    out.push_str("\nInequality (1) audit (`B_4k > n/2` or `B_4k ≥ k/(20 lg n)·B_k`) on dynamics endpoints:\n\n");
    let mut audit = Table::new(vec!["n", "k", "B_k", "B_4k", "holds"]);
    for &n in sizes.iter().take(3) {
        let mut rng = StdRng::seed_from_u64(0x9999 + n as u64);
        let start = bncg_graph::generators::random::random_connected(&mut rng, n, n / 4);
        let engine = SwapDynamics::<SumObjective>::new(DynamicsConfig::default());
        let result = engine.run(&start, &mut rng);
        if result.outcome != Outcome::Converged {
            continue;
        }
        let dm = DistanceMatrix::build(&result.graph.to_csr());
        for check in ball_growth_ladder(&dm, 1) {
            audit.row(vec![
                n.to_string(),
                check.k.to_string(),
                check.b_k.to_string(),
                check.b_4k.to_string(),
                ok(check.holds()),
            ]);
        }
    }
    out.push_str(&audit.render());
    out.push_str(
        "\nShape check: the paper proves a sub-polynomial envelope; measured \
         equilibrium diameters stay at 2–3 across all n, consistent with the \
         paper's own observation that every known sum equilibrium has \
         diameter ≤ 3.\n",
    );
    out
}
