//! E2 — Theorem 4 / Figure 2: max-equilibrium trees.
//!
//! Paper claims: max-equilibrium trees have diameter ≤ 3; the diameter-3
//! family is exactly the double stars with ≥ 2 leaves per root.

use bncg_core::equilibrium::MaxGame;
use bncg_dynamics::census::tree_census;
use bncg_graph::generators::classic::double_star;

use crate::md::{ok, Table};

/// Runs E2 and renders the report.
pub fn run(opts: &super::RunOpts) -> String {
    let quick = opts.quick;
    let max_n = if quick { 9 } else { 12 };
    let mut out = String::from("## E2 — Theorem 4: max-equilibrium trees have diameter ≤ 3\n\n");
    let mut t = Table::new(vec![
        "n",
        "free trees",
        "max equilibria",
        "max diameter",
        "all stars/double-stars?",
        "Theorem 4 holds",
    ]);
    for n in 4..=max_n {
        let c = tree_census(n);
        let max_diam = c
            .max_equilibrium_diameters
            .iter()
            .max()
            .copied()
            .unwrap_or(0);
        t.row(vec![
            n.to_string(),
            c.total_trees.to_string(),
            c.max_equilibrium_diameters.len().to_string(),
            max_diam.to_string(),
            ok(c.max_equilibria_star_or_double_star == c.max_equilibrium_diameters.len()),
            ok(c.theorem4_holds()),
        ]);
    }
    out.push_str(&t.render());

    out.push_str("\nFigure 2 boundary: D(p, q) is a max equilibrium iff p, q ≥ 2:\n\n");
    let mut b = Table::new(vec!["p \\ q", "1", "2", "3", "4"]);
    for p in 1..=4usize {
        let mut row = vec![p.to_string()];
        for q in 1..=4usize {
            let eq = MaxGame::is_equilibrium(&double_star(p, q));
            row.push(if eq { "eq".into() } else { "—".to_string() });
        }
        b.row(row);
    }
    out.push_str(&b.render());
    out
}
