//! E5 — Lemma 10 / Corollary 11: insertion-gain audits.
//!
//! Corollary 11: in a sum equilibrium, adding any single edge `uv`
//! improves `u`'s sum of distances by at most `5 n lg n`. Lemma 10: from
//! any vertex there is a nearby cheap-to-remove edge (or the diameter is
//! already ≤ 2 lg n). Both are audited on genuine sum equilibria (the
//! catalog's stars, repaired Figure 3, and dynamics endpoints) and on a
//! *non*-equilibrium contrast (a long cycle), where the bound has no
//! reason to be comfortable.

use bncg_constructions::fig3::repaired_fig3;
use bncg_core::lemmas::{corollary11_audit, lemma10_search, Lemma10Outcome};
use bncg_core::objective::SumObjective;
use bncg_dynamics::engine::DynamicsConfig;
use bncg_dynamics::SwapDynamics;
use bncg_graph::generators::classic;
use bncg_graph::{DistanceMatrix, Graph};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::md::{f3, ok, Table};

fn audit_row(name: &str, g: &Graph, is_eq: bool, t: &mut Table) {
    let dm = DistanceMatrix::build(&g.to_csr());
    let a = corollary11_audit(&dm);
    let l10 = lemma10_search(g, &dm, 0);
    let l10_label = match l10 {
        Lemma10Outcome::SmallDiameter { diameter, .. } => {
            format!("diam {diameter} ≤ 2 lg n")
        }
        Lemma10Outcome::CheapEdge { edge, increase, .. } => {
            format!("cheap edge ({},{}) Δ={increase}", edge.0, edge.1)
        }
        Lemma10Outcome::Violation => "VIOLATION".to_string(),
    };
    t.row(vec![
        name.to_string(),
        g.n().to_string(),
        if is_eq { "yes" } else { "no" }.to_string(),
        a.max_gain.to_string(),
        f3(a.bound),
        ok(a.holds()),
        l10_label,
    ]);
}

/// Runs E5 and renders the report.
pub fn run(opts: &super::RunOpts) -> String {
    let quick = opts.quick;
    let mut out = String::from(
        "## E5 — Corollary 11 / Lemma 10: single-insertion gains in sum equilibria\n\n",
    );
    let mut t = Table::new(vec![
        "graph",
        "n",
        "sum eq?",
        "max insertion gain",
        "bound 5 n lg n",
        "Cor. 11 holds",
        "Lemma 10 outcome",
    ]);
    audit_row("star(32)", &classic::star(32), true, &mut t);
    audit_row("star(128)", &classic::star(128), true, &mut t);
    audit_row("repaired fig3", &repaired_fig3(), true, &mut t);
    audit_row("K_16", &classic::complete(16), true, &mut t);

    // Dynamics endpoints.
    let sizes: &[usize] = if quick { &[32] } else { &[32, 64, 128] };
    for &n in sizes {
        let mut rng = StdRng::seed_from_u64(0xE5 + n as u64);
        let start = bncg_graph::generators::random::random_connected(&mut rng, n, n / 4);
        let engine = SwapDynamics::<SumObjective>::new(DynamicsConfig::default());
        let result = engine.run(&start, &mut rng);
        audit_row(
            &format!("dynamics endpoint n={n}"),
            &result.graph,
            true,
            &mut t,
        );
    }

    // Contrast: a long cycle is NOT an equilibrium; the chord gain there
    // is Θ(n²) and must blow through the 5 n lg n budget for large n.
    audit_row("cycle(256) [not eq]", &classic::cycle(256), false, &mut t);
    out.push_str(&t.render());
    out.push_str(
        "\nShape check: every genuine equilibrium sits far inside the \
         5 n lg n budget, while the non-equilibrium cycle violates it — the \
         corollary is doing real work separating the two.\n",
    );
    out
}
