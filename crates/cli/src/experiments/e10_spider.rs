//! E10 — the Section 5 remark: per-vertex uniformity is essential.
//!
//! The spider (hub + legs + heavy end-clusters) concentrates almost all
//! *pairwise* distances at one value while having large diameter — but it
//! is **not** ε-distance-almost-uniform in the per-vertex sense for any
//! small ε, so it does not contradict Conjecture 14. The table charts all
//! three quantities as the spider grows.

use bncg_analysis::uniformity::{almost_uniformity, uniformity};
use bncg_constructions::spider::{pairwise_distance_histogram, spider};
use bncg_graph::DistanceMatrix;

use crate::md::{f3, Table};

/// Runs E10 and renders the report.
pub fn run(opts: &super::RunOpts) -> String {
    let quick = opts.quick;
    let mut out = String::from(
        "## E10 — the spider: pairwise-uniform, high-diameter, not vertex-uniform\n\n",
    );
    let cases: &[(usize, usize, usize)] = if quick {
        &[(6, 2, 20), (8, 2, 40)]
    } else {
        &[(6, 2, 20), (8, 2, 40), (12, 3, 60), (16, 4, 80)]
    };
    let mut t = Table::new(vec![
        "legs",
        "path len",
        "cluster",
        "n",
        "diameter",
        "modal pairwise mass",
        "ε (per-vertex, almost)",
        "contradicts Conj. 14?",
    ]);
    for &(legs, path_len, cluster) in cases {
        let g = spider(legs, path_len, cluster);
        let dm = DistanceMatrix::build(&g.to_csr());
        let hist = pairwise_distance_histogram(&g);
        let modal_mass = hist.iter().cloned().fold(0.0f64, f64::max);
        let au = almost_uniformity(&dm).unwrap();
        // A would-be counterexample needs small per-vertex ε AND large
        // diameter; the spider never achieves the former.
        let contradicts =
            au.epsilon < 0.25 && f64::from(dm.diameter().unwrap()) > 4.0 * (g.n() as f64).log2();
        t.row(vec![
            legs.to_string(),
            path_len.to_string(),
            cluster.to_string(),
            g.n().to_string(),
            dm.diameter().unwrap().to_string(),
            f3(modal_mass),
            f3(au.epsilon),
            if contradicts {
                "**YES**".into()
            } else {
                "no".to_string()
            },
        ]);
        let _ = uniformity(&dm); // exercised for parity with the almost case
    }
    out.push_str(&t.render());
    out.push_str(
        "\nShape check: the modal pairwise mass climbs toward 1 (almost all \
         pairs share one distance) while per-vertex ε stays near 1 — the hub \
         and leg vertices see the world at the wrong radii. Pairwise \
         concentration alone therefore cannot feed Conjecture 14, exactly \
         the paper's point.\n",
    );
    out
}
