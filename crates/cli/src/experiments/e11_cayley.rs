//! E11 — Theorem 15: ε-distance-uniform Cayley graphs of Abelian groups
//! have diameter `O(lg n / lg(1/ε))`.
//!
//! We measure (ε, diameter) across circulants, product-group tori and
//! hypercubes, report the normalized ratio `diam · lg(1/ε) / lg n` (which
//! the theorem bounds by a constant), and audit the Plünnecke consequence
//! `|qS| ≤ |pS|^{q/p}` the proof rests on.

use bncg_algebra::cayley::{
    cayley_graph, circulant_cayley, complete_multipartite_cayley, dense_circulant, hypercube_cayley,
};
use bncg_algebra::group::AbelianGroup;
use bncg_algebra::sumset::plunnecke_consequence_holds;
use bncg_analysis::uniformity::{theorem15_ratio, uniformity};
use bncg_graph::{DistanceMatrix, Graph};

use crate::md::{f3, ok, Table};

/// Runs E11 and renders the report.
pub fn run(opts: &super::RunOpts) -> String {
    let quick = opts.quick;
    let mut out =
        String::from("## E11 — Theorem 15: uniform Abelian Cayley graphs have small diameter\n\n");
    // Subjects with genuinely small ε (Theorem 15's hypothesis needs
    // ε < 1/4), plus sparse contrast families where the hypothesis is
    // vacuous (reported honestly as n/a).
    let mut subjects: Vec<(String, Graph)> = vec![
        (
            "K_{16×4} = Cay(Z_16×Z_4)".into(),
            complete_multipartite_cayley(16, 4),
        ),
        ("K_{32×4}".into(), complete_multipartite_cayley(32, 4)),
        ("C_64(1..26) dense".into(), dense_circulant(64, 26)),
        ("C_256(1..104) dense".into(), dense_circulant(256, 104)),
        ("Q_8 (sparse contrast)".into(), hypercube_cayley(8)),
        (
            "C_128(1,10,27) (sparse)".into(),
            circulant_cayley(128, &[1, 10, 27]),
        ),
    ];
    if !quick {
        subjects.push(("K_{64×4}".into(), complete_multipartite_cayley(64, 4)));
        subjects.push(("C_1024(1..416) dense".into(), dense_circulant(1024, 416)));
        let g44 = AbelianGroup::product(&[16, 16]);
        let gens = g44.symmetrize(&[vec![1, 0], vec![0, 1], vec![1, 1]]);
        subjects.push((
            "Z_16×Z_16 (3 gens, sparse)".into(),
            cayley_graph(&g44, &gens),
        ));
    }
    let mut t = Table::new(vec![
        "graph",
        "n",
        "diameter",
        "best ε (exact uniformity)",
        "r",
        "ratio diam·lg(1/ε)/lg n",
        "ratio ≤ 8",
    ]);
    for (name, g) in &subjects {
        let dm = DistanceMatrix::build(&g.to_csr());
        let d = dm.diameter().unwrap();
        let u = uniformity(&dm).unwrap();
        let ratio = theorem15_ratio(d, u.epsilon, g.n());
        t.row(vec![
            name.clone(),
            g.n().to_string(),
            d.to_string(),
            f3(u.epsilon),
            u.r.to_string(),
            ratio.map_or("n/a (ε ≥ 1/4)".into(), f3),
            ratio.map_or("n/a".into(), |r| ok(r <= 8.0)),
        ]);
    }
    out.push_str(&t.render());

    // Plünnecke-consequence audit.
    out.push_str("\nPlünnecke consequence `|qS| ≤ |pS|^{q/p}` audit:\n\n");
    let mut p = Table::new(vec!["group", "generators", "max i", "holds"]);
    let cases: Vec<(String, AbelianGroup, Vec<Vec<u64>>)> = vec![
        (
            "Z_64".into(),
            AbelianGroup::cyclic(64),
            vec![vec![1], vec![9]],
        ),
        (
            "Z_2^8".into(),
            AbelianGroup::boolean(8),
            (0..8)
                .map(|i| {
                    let mut e = vec![0u64; 8];
                    e[i] = 1;
                    e
                })
                .collect(),
        ),
        (
            "Z_12×Z_18".into(),
            AbelianGroup::product(&[12, 18]),
            vec![vec![1, 0], vec![0, 1], vec![1, 1]],
        ),
    ];
    for (name, group, gens) in cases {
        let s = group.symmetrize(&gens);
        let max_i = if quick { 6 } else { 10 };
        let holds = plunnecke_consequence_holds(&group, &s, max_i);
        p.row(vec![
            name,
            format!("{} elems", s.len()),
            max_i.to_string(),
            ok(holds.is_ok()),
        ]);
    }
    out.push_str(&p.render());
    out.push_str(
        "\nShape check: every measured ratio sits below a small constant — \
         the O(lg n / lg(1/ε)) law — and the sumset growth bound holds \
         everywhere, as the Plünnecke machinery demands.\n",
    );
    out
}
