//! Engine-conformance traces: a normalized, engine-agnostic record of one
//! dynamics run, and the equivalence assertion the cross-engine
//! conformance matrix is built on.
//!
//! The dynamics crate depends on this crate (for [`faults`](crate::faults)),
//! so the code that *drives* the engines cannot live here — it sits in the
//! facade (`bncg::conformance::trace_engines`). What lives here is the
//! dependency-free contract both sides agree on: every engine family
//! (serial rounds, hand-stepped rounds, the round service, the pipelined
//! service, a journal-resumed service) reduces its run to an
//! [`EngineTrace`], and [`assert_equivalent`] demands the traces agree
//! round for round — same proposal count, same accepted count, same
//! social cost — and land on the same final network with the same
//! outcome.
//!
//! The trace deliberately excludes wall-clock phase timings and repair
//! counters: those describe *how* a maintained matrix got to its state,
//! which legitimately differs between a fresh engine and a long-lived
//! service, while everything in the trace is a pure function of the start
//! graph, the rule set, and the response rule.

/// One round of a normalized engine trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRow {
    /// Round number (1-based, continuing across a resume).
    pub round: usize,
    /// Proposals swept (agents with an improving move).
    pub proposed: usize,
    /// Moves accepted by conflict resolution and applied.
    pub applied: usize,
    /// Social cost after the round barrier (`None` while the rule set
    /// reports an infinite/undefined aggregate, e.g. disconnection under
    /// a distance-based game).
    pub social_cost: Option<u64>,
}

/// A full normalized run of one engine on one scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineTrace {
    /// Which engine produced the trace (for diagnostics only — not part
    /// of the equivalence relation).
    pub engine: String,
    /// Per-round rows, in execution order.
    pub rounds: Vec<TraceRow>,
    /// Terminal outcome label (`converged` / `cycled` / `capped`).
    pub outcome: String,
    /// The final network, in a stable text encoding (graph6).
    pub final_graph: String,
}

impl EngineTrace {
    /// An empty trace for the named engine.
    pub fn new(engine: impl Into<String>) -> Self {
        EngineTrace {
            engine: engine.into(),
            rounds: Vec::new(),
            outcome: String::new(),
            final_graph: String::new(),
        }
    }

    /// Appends one round row.
    pub fn push(&mut self, round: usize, proposed: usize, applied: usize, cost: Option<u64>) {
        self.rounds.push(TraceRow {
            round,
            proposed,
            applied,
            social_cost: cost,
        });
    }

    /// Describes the first divergence from `other`, or `None` when the
    /// two traces are record-level equivalent.
    pub fn divergence(&self, other: &EngineTrace) -> Option<String> {
        let pair = format!("{} vs {}", self.engine, other.engine);
        for (a, b) in self.rounds.iter().zip(other.rounds.iter()) {
            if a != b {
                return Some(format!("{pair}: round {}: {a:?} != {b:?}", a.round));
            }
        }
        if self.rounds.len() != other.rounds.len() {
            return Some(format!(
                "{pair}: {} rounds vs {} rounds",
                self.rounds.len(),
                other.rounds.len()
            ));
        }
        if self.outcome != other.outcome {
            return Some(format!(
                "{pair}: outcome {:?} != {:?}",
                self.outcome, other.outcome
            ));
        }
        if self.final_graph != other.final_graph {
            return Some(format!(
                "{pair}: final graph {:?} != {:?}",
                self.final_graph, other.final_graph
            ));
        }
        None
    }
}

/// Panics (with the first divergence) unless every trace is record-level
/// equivalent to the first. `context` names the scenario for the panic
/// message. Returns the number of rounds each trace pinned.
pub fn assert_equivalent(traces: &[EngineTrace], context: &str) -> usize {
    let (first, rest) = traces
        .split_first()
        .expect("assert_equivalent needs at least one trace");
    for t in rest {
        if let Some(d) = first.divergence(t) {
            panic!("engine traces diverged ({context}): {d}");
        }
    }
    first.rounds.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(engine: &str) -> EngineTrace {
        let mut t = EngineTrace::new(engine);
        t.push(1, 3, 2, Some(40));
        t.push(2, 0, 0, Some(40));
        t.outcome = "converged".into();
        t.final_graph = "D?{".into();
        t
    }

    #[test]
    fn identical_traces_are_equivalent() {
        let a = sample("serial");
        let b = sample("pipelined");
        assert_eq!(a.divergence(&b), None);
        assert_eq!(assert_equivalent(&[a, b], "sample"), 2);
    }

    #[test]
    fn row_divergence_is_reported_first() {
        let a = sample("serial");
        let mut b = sample("service");
        b.rounds[1].applied = 1;
        b.outcome = "capped".into();
        let d = a.divergence(&b).expect("diverges");
        assert!(d.contains("round 2"), "{d}");
    }

    #[test]
    fn length_outcome_and_graph_divergences_are_caught() {
        let a = sample("serial");
        let mut short = sample("stepwise");
        short.rounds.pop();
        assert!(a.divergence(&short).unwrap().contains("rounds"));
        let mut oc = sample("stepwise");
        oc.outcome = "cycled".into();
        assert!(a.divergence(&oc).unwrap().contains("outcome"));
        let mut fg = sample("stepwise");
        fg.final_graph = "Cr".into();
        assert!(a.divergence(&fg).unwrap().contains("final graph"));
    }

    #[test]
    #[should_panic(expected = "engine traces diverged")]
    fn assert_equivalent_panics_on_divergence() {
        let a = sample("serial");
        let mut b = sample("service");
        b.rounds[0].proposed = 9;
        assert_equivalent(&[a, b], "sample");
    }
}
