//! Deterministic fault-injection and conformance harness for the bncg
//! workspace.
//!
//! Production code declares *fault points* — named places where an
//! injected failure is meaningful (a journal write, the window between a
//! journal append and the matrix apply, a worker-pool job) — and asks
//! [`faults::fire`] whether the active plan wants this particular hit to
//! fail. Tests install a [`faults::FaultPlan`] around the code under
//! test; everything is counted deterministically, so "fail the 3rd
//! journal append" reproduces bit-for-bit.
//!
//! The whole facility is feature-gated like `telemetry`: without the
//! `faults` feature (the default), [`faults::fire`] is a `const false`
//! and the compiler deletes every fault branch from release builds.
//! Downstream crates forward the switch through their own `testkit`
//! feature (see the facade's `Cargo.toml`), so a single
//! `--features testkit` turns the harness on across the tree.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! A second, always-on facility lives in [`conformance`]: the normalized
//! [`EngineTrace`](conformance::EngineTrace) every dynamics engine family
//! reduces to, and the record-level equivalence assertion the
//! cross-engine game-conformance matrix drives (the engine drivers
//! themselves live in the facade's `conformance` module, above this
//! crate in the dependency order).

pub mod conformance;
pub mod faults;
