//! Named fault points with deterministic, counted fault plans.
//!
//! # Model
//!
//! A [`FaultPlan`] maps fault-point names to *hit rules*: fail the `k`-th
//! time the point is reached ([`FaultPlan::fail_nth`]), fail every time
//! from the `k`-th hit on ([`FaultPlan::fail_from`]), or fail every hit
//! ([`FaultPlan::fail_always`]). Hits are counted per point from the
//! moment the plan is installed, so a plan is a pure function of the
//! execution it observes — rerunning the same deterministic code under
//! the same plan injects the same faults.
//!
//! # Scope and concurrency
//!
//! The active plan is **process-global** (worker-pool threads must see
//! it), installed for the duration of a closure by [`with_plan`]. A
//! process-wide mutex serializes `with_plan` sections, so concurrent
//! *fault* tests queue up rather than interleave; tests that do not
//! install a plan see every fault point answer `false`. Keep fault tests
//! in dedicated integration-test binaries when their fault points could
//! be reached by unrelated concurrently-running tests of the same binary.

#[cfg(feature = "faults")]
use std::collections::HashMap;
#[cfg(feature = "faults")]
use std::sync::{Mutex, MutexGuard, OnceLock};

/// When a fault point should inject a failure, in hits since plan
/// installation (0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// Fail exactly the `n`-th hit.
    Nth(u64),
    /// Fail every hit from the `n`-th on.
    From(u64),
    /// Fail every hit.
    Always,
}

impl Rule {
    /// Whether a hit with this 0-based index should fail.
    pub fn fires(self, hit: u64) -> bool {
        match self {
            Rule::Nth(n) => hit == n,
            Rule::From(n) => hit >= n,
            Rule::Always => true,
        }
    }
}

/// A deterministic fault plan: per-point hit rules.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    rules: Vec<(&'static str, Rule)>,
}

impl FaultPlan {
    /// The empty plan (no point ever fires).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Fail exactly the `n`-th (0-based) hit of `point`.
    #[must_use]
    pub fn fail_nth(mut self, point: &'static str, n: u64) -> Self {
        self.rules.push((point, Rule::Nth(n)));
        self
    }

    /// Fail every hit of `point` from the `n`-th (0-based) on.
    #[must_use]
    pub fn fail_from(mut self, point: &'static str, n: u64) -> Self {
        self.rules.push((point, Rule::From(n)));
        self
    }

    /// Fail every hit of `point`.
    #[must_use]
    pub fn fail_always(mut self, point: &'static str) -> Self {
        self.rules.push((point, Rule::Always));
        self
    }
}

#[cfg(feature = "faults")]
struct ActivePlan {
    plan: FaultPlan,
    hits: HashMap<&'static str, u64>,
}

#[cfg(feature = "faults")]
fn active() -> &'static Mutex<Option<ActivePlan>> {
    static ACTIVE: OnceLock<Mutex<Option<ActivePlan>>> = OnceLock::new();
    ACTIVE.get_or_init(|| Mutex::new(None))
}

#[cfg(feature = "faults")]
fn section_lock() -> MutexGuard<'static, ()> {
    static SECTION: OnceLock<Mutex<()>> = OnceLock::new();
    SECTION
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Whether the active plan wants this hit of `point` to fail. Counts the
/// hit either way. Always `false` without the `faults` feature or when no
/// plan is installed.
#[cfg(feature = "faults")]
pub fn fire(point: &'static str) -> bool {
    let mut guard = active().lock().unwrap_or_else(|e| e.into_inner());
    let Some(active) = guard.as_mut() else {
        return false;
    };
    let hit = active.hits.entry(point).or_insert(0);
    let idx = *hit;
    *hit += 1;
    active
        .plan
        .rules
        .iter()
        .any(|(p, rule)| *p == point && rule.fires(idx))
}

/// Whether the active plan wants this hit of `point` to fail. Always
/// `false` in this build: the `faults` feature is off, so the branch
/// folds away.
#[cfg(not(feature = "faults"))]
#[inline(always)]
pub fn fire(_point: &'static str) -> bool {
    false
}

/// Number of times `point` has been hit under the currently installed
/// plan (0 when no plan is active or the feature is off).
#[cfg(feature = "faults")]
pub fn hits(point: &'static str) -> u64 {
    let guard = active().lock().unwrap_or_else(|e| e.into_inner());
    guard
        .as_ref()
        .and_then(|a| a.hits.get(point).copied())
        .unwrap_or(0)
}

/// Number of times `point` has been hit (always 0 in this build).
#[cfg(not(feature = "faults"))]
pub fn hits(_point: &'static str) -> u64 {
    0
}

/// Installs `plan` for the duration of `f`, then uninstalls it — even on
/// panic (the guard restores on unwind). Sections are serialized
/// process-wide; hit counters start at zero at installation.
#[cfg(feature = "faults")]
pub fn with_plan<R>(plan: FaultPlan, f: impl FnOnce() -> R) -> R {
    let _section = section_lock();
    struct Uninstall;
    impl Drop for Uninstall {
        fn drop(&mut self) {
            *active().lock().unwrap_or_else(|e| e.into_inner()) = None;
        }
    }
    *active().lock().unwrap_or_else(|e| e.into_inner()) = Some(ActivePlan {
        plan,
        hits: HashMap::new(),
    });
    let _uninstall = Uninstall;
    f()
}

/// Runs `f` with no plan machinery at all (the `faults` feature is off;
/// every fault point answers `false`).
#[cfg(not(feature = "faults"))]
pub fn with_plan<R>(_plan: FaultPlan, f: impl FnOnce() -> R) -> R {
    f()
}

#[cfg(all(test, feature = "faults"))]
mod tests {
    use super::*;

    #[test]
    fn rules_fire_on_the_right_hits() {
        assert!(Rule::Nth(2).fires(2));
        assert!(!Rule::Nth(2).fires(3));
        assert!(Rule::From(1).fires(5));
        assert!(!Rule::From(1).fires(0));
        assert!(Rule::Always.fires(0));
    }

    #[test]
    fn plans_count_hits_per_point_and_uninstall() {
        let fired: Vec<bool> = with_plan(FaultPlan::new().fail_nth("t.a", 1), || {
            let fired = vec![fire("t.a"), fire("t.b"), fire("t.a"), fire("t.a")];
            assert_eq!(hits("t.a"), 3);
            assert_eq!(hits("t.b"), 1);
            fired
        });
        assert_eq!(fired, vec![false, false, true, false]);
        // Uninstalled: nothing fires, nothing is counted.
        assert!(!fire("t.a"));
        assert_eq!(hits("t.a"), 0);
    }

    #[test]
    fn plans_uninstall_on_panic() {
        let caught = std::panic::catch_unwind(|| {
            with_plan(FaultPlan::new().fail_always("t.panic"), || {
                assert!(fire("t.panic"));
                panic!("boom");
            })
        });
        assert!(caught.is_err());
        assert!(!fire("t.panic"), "plan must not outlive its section");
    }
}

#[cfg(all(test, not(feature = "faults")))]
mod tests_off {
    use super::*;

    #[test]
    fn everything_is_inert_without_the_feature() {
        with_plan(FaultPlan::new().fail_always("t.off"), || {
            assert!(!fire("t.off"));
        });
        assert_eq!(hits("t.off"), 0);
    }
}
