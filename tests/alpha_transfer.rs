//! Integration tests for the α-game baseline and the paper's
//! "all α at once" transfer story.

use bncg::alpha::game::OwnedNetwork;
use bncg::alpha::nash::{find_improving_deviation, greedy_dynamics, is_single_deviation_stable};
use bncg::alpha::poa::{alpha_sweep, empirical_poa, poa_diameter_bounds};
use bncg::alpha::social::{optimal_social_cost, social_cost};
use bncg::game::SumGame;
use bncg::graph::generators::classic;

#[test]
fn social_optimum_is_exact_on_small_instances() {
    // Exhaustive-ish: the optimum over random connected graphs never beats
    // min(star, clique).
    use bncg::graph::generators::random::random_connected;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(3);
    for alpha in [0.25, 1.0, 2.0, 3.0, 10.0] {
        let opt = optimal_social_cost(6, alpha);
        for extra in 0..8 {
            let g = random_connected(&mut rng, 6, extra);
            assert!(social_cost(&g, alpha) >= opt - 1e-9);
        }
    }
}

#[test]
fn swap_equilibria_give_poa_points_for_every_alpha() {
    // One parameter-free equilibrium, a full α sweep — the transfer the
    // paper's abstract advertises.
    let g = bncg::constructions::fig3::repaired_fig3();
    assert!(SumGame::is_equilibrium(&g));
    let sweep = alpha_sweep(&g, &[0.1, 0.5, 1.0, 2.0, 8.0, 64.0, 1024.0]);
    for (alpha, ratio) in sweep {
        assert!(ratio >= 1.0 - 1e-9);
        assert!(
            ratio <= 4.0,
            "diameter-3 equilibrium should stay within small constant of OPT; alpha={alpha}, ratio={ratio}"
        );
        let bounds = poa_diameter_bounds(&g, alpha).unwrap();
        assert!(bounds.consistent, "diameter sandwich at alpha={alpha}");
    }
}

#[test]
fn alpha_game_regime_boundary_at_two() {
    let n = 9;
    let star = OwnedNetwork::from_graph(&classic::star(n));
    let clique = OwnedNetwork::from_graph(&classic::complete(n));
    // Star stable above 1, clique stable below 1... precisely: star is
    // 1-deviation stable for alpha >= 1; clique for alpha <= 1.
    assert!(is_single_deviation_stable(&star, 2.0));
    assert!(is_single_deviation_stable(&star, 100.0));
    assert!(!is_single_deviation_stable(&star, 0.5));
    assert!(is_single_deviation_stable(&clique, 0.5));
    assert!(!is_single_deviation_stable(&clique, 3.0));
}

#[test]
fn greedy_alpha_dynamics_lands_on_stable_networks() {
    let start = OwnedNetwork::from_graph(&classic::cycle(7));
    for alpha in [0.5, 1.5, 4.0] {
        let (stable, steps) = greedy_dynamics(&start, alpha, 200);
        assert!(steps < 200, "must converge at alpha={alpha}");
        assert!(is_single_deviation_stable(&stable, alpha));
        assert!(bncg::graph::components::is_connected(stable.graph()));
    }
}

#[test]
fn optimal_topologies_have_unit_ratio() {
    assert!((empirical_poa(&classic::complete(8), 1.0) - 1.0).abs() < 1e-9);
    assert!((empirical_poa(&classic::star(8), 4.0) - 1.0).abs() < 1e-9);
}

#[test]
fn deviations_report_genuine_improvements() {
    let net = OwnedNetwork::from_graph(&classic::path(7));
    if let Some(dev) = find_improving_deviation(&net, 1.0) {
        assert!(dev.after < dev.before);
    } else {
        panic!("a path should never be alpha-stable at alpha=1");
    }
}
