//! Convergence comparison: round-based (frozen-snapshot) vs sequential
//! dynamics on the paper's small instances.
//!
//! The round model genuinely changes the dynamics: simultaneous
//! best-response play can **oscillate** where sequential play converges —
//! the phenomenon studied by Kawald & Lenzner (*On Dynamics in Selfish
//! Network Creation*). These tests pin the observed behavior of both
//! engines on paths, cycles, and stars:
//!
//! * sequential results are unchanged from the seed (paths and cycles
//!   converge; tree starts end at stars under the sum objective);
//! * round mode is deterministic, and its per-family outcome —
//!   converged / oscillated (with period) / different equilibrium — is
//!   recorded explicitly below.

use bncg::dynamics::engine::{DynamicsConfig, Outcome, SwapDynamics};
use bncg::dynamics::rounds::{RoundConfig, RoundDynamics};
use bncg::game::equilibrium::{MaxGame, SumGame};
use bncg::game::objective::{MaxObjective, SumObjective};
use bncg::graph::generators::classic;
use bncg::graph::properties::is_star;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn rng() -> StdRng {
    StdRng::seed_from_u64(7)
}

// --- Sequential baselines: unchanged from the seed ----------------------

#[test]
fn sequential_sum_dynamics_still_take_paths_to_stars() {
    let engine = SwapDynamics::<SumObjective>::new(DynamicsConfig::default());
    for n in [5usize, 9, 10] {
        let result = engine.run(&classic::path(n), &mut rng());
        assert_eq!(result.outcome, Outcome::Converged, "path({n})");
        assert!(is_star(&result.graph), "path({n}) must end at a star");
        assert_eq!(result.cycle_period, None);
    }
}

#[test]
fn sequential_dynamics_still_converge_on_cycles_and_stars() {
    let sum = SwapDynamics::<SumObjective>::new(DynamicsConfig::default());
    let max = SwapDynamics::<MaxObjective>::new(DynamicsConfig::default());
    for g in [classic::cycle(6), classic::cycle(8), classic::cycle(9)] {
        assert_eq!(sum.run(&g, &mut rng()).outcome, Outcome::Converged);
        assert_eq!(max.run(&g, &mut rng()).outcome, Outcome::Converged);
    }
    for g in [classic::star(8), classic::star(12)] {
        let r = sum.run(&g, &mut rng());
        assert_eq!(r.outcome, Outcome::Converged);
        assert_eq!(r.moves, 0, "stars are already sum equilibria");
    }
}

// --- Round mode: recorded behavior per family ---------------------------

#[test]
fn round_mode_on_stars_converges_immediately_like_sequential() {
    for n in [8usize, 12] {
        let r = RoundDynamics::<SumObjective>::new(RoundConfig::default()).run(&classic::star(n));
        assert_eq!(r.outcome, Outcome::Converged);
        assert_eq!(r.rounds, 1);
        assert_eq!(r.moves_applied, 0);
    }
}

#[test]
fn round_mode_on_short_paths_reaches_the_same_star_equilibria() {
    // path(5) and path(9): round mode converges, and to the same
    // isomorphism class (a star) the sequential engine reaches.
    for n in [5usize, 9] {
        let r = RoundDynamics::<SumObjective>::new(RoundConfig::default()).run(&classic::path(n));
        assert_eq!(r.outcome, Outcome::Converged, "path({n})");
        assert!(is_star(&r.graph), "path({n}) round endpoint must be a star");
        assert!(SumGame::is_equilibrium(&r.graph));
    }
}

#[test]
fn round_mode_on_path_ten_oscillates_where_sequential_converges() {
    // The headline divergence: simultaneous play on path(10) under the
    // sum objective enters a period-2 orbit (two agents keep answering
    // each other's frozen-snapshot move), while the sequential engine
    // converges to a star from the same start. Deterministic, so pinned
    // exactly.
    let round = RoundDynamics::<SumObjective>::new(RoundConfig::default()).run(&classic::path(10));
    assert_eq!(round.outcome, Outcome::Cycled, "round mode must oscillate");
    assert_eq!(round.cycle_period, Some(2), "the classic 2-oscillation");

    let seq = SwapDynamics::<SumObjective>::new(DynamicsConfig::default())
        .run(&classic::path(10), &mut rng());
    assert_eq!(seq.outcome, Outcome::Converged);
    assert!(is_star(&seq.graph));
}

#[test]
fn round_mode_on_cycle_nine_oscillates_under_sum_converges_under_max() {
    let sum = RoundDynamics::<SumObjective>::new(RoundConfig::default()).run(&classic::cycle(9));
    assert_eq!(sum.outcome, Outcome::Cycled);
    assert_eq!(sum.cycle_period, Some(2));

    let max = RoundDynamics::<MaxObjective>::new(RoundConfig::default()).run(&classic::cycle(9));
    assert_eq!(max.outcome, Outcome::Converged);
    assert!(MaxGame::find_improving_swap(&max.graph).is_none());
}

#[test]
fn round_mode_converged_endpoints_are_true_equilibria_but_may_differ() {
    // cycle(6)/cycle(8): both semantics converge under sum, but the round
    // endpoint need not be the sequential endpoint — only equilibrium
    // membership and edge count are invariant.
    for n in [6usize, 8] {
        let g = classic::cycle(n);
        let round = RoundDynamics::<SumObjective>::new(RoundConfig::default()).run(&g);
        assert_eq!(round.outcome, Outcome::Converged, "cycle({n})");
        assert!(SumGame::is_equilibrium(&round.graph));
        assert_eq!(round.graph.m(), g.m());
        let seq = SwapDynamics::<SumObjective>::new(DynamicsConfig::default()).run(&g, &mut rng());
        assert_eq!(seq.outcome, Outcome::Converged);
        assert!(SumGame::is_equilibrium(&seq.graph));
    }
}

#[test]
fn round_mode_max_objective_converges_on_all_small_families() {
    let engine = RoundDynamics::<MaxObjective>::new(RoundConfig::default());
    for g in [
        classic::path(5),
        classic::path(9),
        classic::path(10),
        classic::cycle(6),
        classic::cycle(8),
        classic::star(8),
    ] {
        let r = engine.run(&g);
        assert_eq!(r.outcome, Outcome::Converged);
        assert!(MaxGame::find_improving_swap(&r.graph).is_none());
    }
}
