//! Integration tests for Section 5: distance uniformity, skew triples,
//! the Theorem 13 pipeline, the spider remark, and Theorem 15.

use bncg::algebra::cayley::{complete_multipartite_cayley, dense_circulant, hypercube_cayley};
use bncg::algebra::group::AbelianGroup;
use bncg::algebra::primes::safe_prime_power;
use bncg::algebra::sumset::{plunnecke_consequence_holds, sumset_growth};
use bncg::analysis::skew::{skew_fraction, theorem13_claim1};
use bncg::analysis::theorem13::{power_uniformity_curve, theorem13_uniformize};
use bncg::analysis::uniformity::{almost_uniformity, theorem15_ratio, uniformity};
use bncg::constructions::spider::{pairwise_distance_histogram, spider};
use bncg::graph::generators::classic;
use bncg::graph::DistanceMatrix;

#[test]
fn skew_triples_vanish_on_genuine_sum_equilibria() {
    for g in [
        classic::star(32),
        bncg::constructions::fig3::repaired_fig3(),
        classic::complete(12),
    ] {
        let dm = DistanceMatrix::build(&g.to_csr());
        let (frac, alpha, holds) = theorem13_claim1(&dm, 0.5);
        assert!(holds, "claim 1 must hold: fraction {frac} vs alpha {alpha}");
        assert_eq!(frac, 0.0, "diameter-<=3 equilibria admit no skew triples");
    }
}

#[test]
fn skew_fraction_is_large_on_paths() {
    let dm = DistanceMatrix::build(&classic::path(128).to_csr());
    assert!(skew_fraction(&dm, 1.0) > 0.1);
}

#[test]
fn theorem13_pipeline_contracts_diameter_and_improves_uniformity() {
    let g = classic::cycle(96);
    let dm = DistanceMatrix::build(&g.to_csr());
    let base_diam = dm.diameter().unwrap();
    let base_eps = almost_uniformity(&dm).unwrap().epsilon;
    let (x, row) = theorem13_uniformize(&g, 0.5).unwrap();
    assert!(x > 1);
    assert!(row.diameter < base_diam);
    assert!(row.eps_almost <= base_eps + 1e-12);
}

#[test]
fn power_curve_is_monotone_in_diameter() {
    let g = classic::torus_grid(10, 10);
    let rows = power_uniformity_curve(&g, &[1, 2, 3, 5]).unwrap();
    for w in rows.windows(2) {
        assert!(w[1].diameter <= w[0].diameter);
    }
}

#[test]
fn spider_separates_pairwise_from_per_vertex_uniformity() {
    let g = spider(8, 2, 40);
    let dm = DistanceMatrix::build(&g.to_csr());
    // Pairwise: one distance dominates.
    let hist = pairwise_distance_histogram(&g);
    let modal_mass = hist.iter().cloned().fold(0.0f64, f64::max);
    assert!(modal_mass > 0.7);
    // Per-vertex: even the relaxed notion stays far from uniform.
    let au = almost_uniformity(&dm).unwrap();
    assert!(
        au.epsilon > 0.5,
        "the spider must NOT be per-vertex uniform"
    );
    // And the diameter is large relative to lg n, so were it uniform it
    // would contradict Conjecture 14 — the remark's whole point.
    assert!(f64::from(dm.diameter().unwrap()) > (g.n() as f64).log2() / 2.0);
}

#[test]
fn theorem15_ratio_is_small_on_uniform_cayley_graphs() {
    let subjects = [
        complete_multipartite_cayley(16, 4),
        complete_multipartite_cayley(32, 4),
        dense_circulant(64, 26),
        dense_circulant(256, 104),
    ];
    for g in subjects {
        let dm = DistanceMatrix::build(&g.to_csr());
        let u = uniformity(&dm).unwrap();
        assert!(
            u.epsilon < 0.25,
            "subject must satisfy the eps < 1/4 premise"
        );
        let ratio = theorem15_ratio(dm.diameter().unwrap(), u.epsilon, g.n()).unwrap();
        assert!(ratio <= 8.0, "Theorem 15 constant blown: {ratio}");
    }
}

#[test]
fn sparse_cayley_graphs_are_honestly_nonuniform() {
    // The hypercube's best single-distance layer is the binomial mode,
    // far below (3/4)n: the Theorem 15 premise does not apply (and the
    // experiments must report it as n/a rather than claim a bound).
    let g = hypercube_cayley(8);
    let dm = DistanceMatrix::build(&g.to_csr());
    let u = uniformity(&dm).unwrap();
    assert!(u.epsilon > 0.25);
    assert!(theorem15_ratio(dm.diameter().unwrap(), u.epsilon, g.n()).is_none());
}

#[test]
fn plunnecke_consequence_across_group_families() {
    let cases: Vec<(AbelianGroup, Vec<Vec<u64>>)> = vec![
        (AbelianGroup::cyclic(48), vec![vec![1], vec![7]]),
        (
            AbelianGroup::product(&[8, 10]),
            vec![vec![1, 0], vec![0, 1]],
        ),
        (
            AbelianGroup::boolean(6),
            (0..6)
                .map(|i| {
                    let mut e = vec![0u64; 6];
                    e[i] = 1;
                    e
                })
                .collect(),
        ),
    ];
    for (group, gens) in cases {
        let s = group.symmetrize(&gens);
        assert_eq!(plunnecke_consequence_holds(&group, &s, 8), Ok(()));
        // Growth is monotone in the reachable-set sense: |iS| bounded by n.
        let growth = sumset_growth(&group, &s, 8);
        assert!(growth.iter().all(|&x| x as u64 <= group.order()));
    }
}

#[test]
fn safe_primes_exist_at_theorem13_scale() {
    for n in [64u64, 256, 1024, 4096, 1 << 16, 1 << 20] {
        let l = (n as f64).log2() as u64;
        let lo = n / 3;
        let hi = lo + 6 * l;
        let p = safe_prime_power(lo, hi, 16 * l * l);
        assert!(p.is_some(), "no safe prime for n={n}");
    }
}
