//! Paper-sanity properties of the shipped game variants.
//!
//! One test family per rule set:
//! - **Bounded budgets** — no accepted move (in any engine, batched or
//!   sequential) ever pushes a vertex past its edge budget.
//! - **Communication interests** — the masked-kernel agent cost equals a
//!   brute-force BFS sum over the interest set, reachable or not.
//! - **k-swap move sets** — [`single_swap_moves`] enumerates exactly the
//!   candidate set the evaluator's swap scan visits, `GameRules::moves`
//!   at `k = 1` is that set under the basic game, and 1-swap stability
//!   from the k-swap auditor coincides with "no improving response".
//!
//! The 2-neighborhood game's no-APSP guarantee lives in its own binary
//! (`tests/game_telemetry.rs`) because it asserts on process-global
//! telemetry counters.

use std::collections::VecDeque;

use bncg::dynamics::engine::Response;
use bncg::dynamics::rounds::{step_round, RoundConfig, RoundDynamics};
use bncg::game::context::EvalContext;
use bncg::game::kswap::{is_k_swap_stable, k_swap_audit, single_swap_moves};
use bncg::game::objective::{MaxObjective, SumObjective, INFINITE_COST};
use bncg::game::rules::{BoundedBudgetGame, GameRules, InterestGame};
use bncg::graph::generators::classic;
use bncg::graph::generators::random::{gnp, random_tree};
use bncg::graph::{Graph, V};
use rand::rngs::StdRng;
use rand::SeedableRng;

// ---------------------------------------------------------------------------
// Bounded budgets.

/// Runs round dynamics under `rules` and asserts, after every single
/// round barrier, that no vertex exceeds its budget (the start graph is
/// within budget by construction via `from_degrees`).
fn assert_budgets_hold(start: &Graph, slack: u32, response: Response, label: &str) {
    let rules: BoundedBudgetGame<SumObjective> = BoundedBudgetGame::from_degrees(start, slack);
    let mut g = start.clone();
    let mut ctx = EvalContext::new(&g);
    ctx.base();
    for round in 1..=40 {
        let step = step_round(&rules, &mut ctx, &mut g, response);
        for v in 0..g.n() as V {
            let deg = g.neighbors(v).len() as u32;
            assert!(
                deg <= rules.budget(v),
                "round {round}: vertex {v} at degree {deg} > budget {} ({label})",
                rules.budget(v)
            );
        }
        if step.proposed == 0 {
            break;
        }
    }
    // The engine wrapper takes the same path; pin its final state too.
    let res = RoundDynamics::with_rules(
        RoundConfig {
            response,
            ..RoundConfig::default()
        },
        rules.clone(),
    )
    .run(start);
    for v in 0..res.graph.n() as V {
        let deg = res.graph.neighbors(v).len() as u32;
        assert!(deg <= rules.budget(v), "engine final state ({label})");
    }
}

#[test]
fn budgets_are_never_exceeded_by_accepted_moves() {
    let mut rng = StdRng::seed_from_u64(0xB0D9);
    for i in 0..4 {
        let er = gnp(&mut rng, 18 + 2 * i, 0.18);
        assert_budgets_hold(&er, 1, Response::Best, "er/slack1/best");
        assert_budgets_hold(&er, 2, Response::FirstImproving, "er/slack2/first");
        let t = random_tree(&mut rng, 16 + 2 * i);
        assert_budgets_hold(&t, 1, Response::Best, "tree/slack1/best");
    }
}

#[test]
fn zero_slack_budget_freezes_a_path() {
    // With zero headroom every insertion target is full, so the budget
    // game converges immediately where the basic game would rewire.
    let g = classic::path(10);
    let rules: BoundedBudgetGame<SumObjective> = BoundedBudgetGame::from_degrees(&g, 0);
    let res = RoundDynamics::with_rules(RoundConfig::default(), rules).run(&g);
    assert_eq!(res.graph, g, "zero-slack path must be frozen");
    assert_eq!(res.moves_applied, 0);
}

// ---------------------------------------------------------------------------
// Communication interests.

/// Unweighted BFS distances from `src` (`None` = unreachable).
fn bfs(g: &Graph, src: V) -> Vec<Option<u32>> {
    let n = g.n();
    let mut dist = vec![None; n];
    dist[src as usize] = Some(0);
    let mut q = VecDeque::from([src]);
    while let Some(u) = q.pop_front() {
        let du = dist[u as usize].unwrap();
        for &w in g.neighbors(u) {
            if dist[w as usize].is_none() {
                dist[w as usize] = Some(du + 1);
                q.push_back(w);
            }
        }
    }
    dist
}

fn brute_interest_cost(g: &Graph, v: V, interests: &[V]) -> u64 {
    let dist = bfs(g, v);
    let mut sum = 0u64;
    for &x in interests {
        match dist[x as usize] {
            Some(d) => sum += u64::from(d),
            None => return INFINITE_COST,
        }
    }
    sum
}

#[test]
fn interest_cost_equals_brute_force_bfs_sum() {
    let mut rng = StdRng::seed_from_u64(0x1A7E);
    for i in 0..6 {
        // gnp graphs are frequently disconnected at this density, which
        // is the point: unreachable interests must price as infinite on
        // both sides.
        let g = gnp(&mut rng, 16 + 2 * i, 0.12);
        let rules = InterestGame::ring(g.n(), 3);
        let ctx = EvalContext::new(&g);
        for v in 0..g.n() as V {
            assert_eq!(
                rules.agent_cost(&ctx, v),
                brute_interest_cost(&g, v, rules.interests(v)),
                "agent {v} on graph {i}"
            );
        }
    }
}

#[test]
fn empty_interest_sets_cost_nothing_and_never_move() {
    let g = classic::path(7);
    let ctx = EvalContext::new(&g);
    let rules = InterestGame::new(vec![Vec::new(); 7]);
    for v in 0..7 {
        assert_eq!(rules.agent_cost(&ctx, v), 0);
        assert_eq!(rules.best_response(&ctx, v), None);
        assert_eq!(rules.first_improving_response(&ctx, v), None);
    }
    assert_eq!(rules.social_cost(&ctx), Some(0));
}

// ---------------------------------------------------------------------------
// k-swap move sets through `GameRules::moves`.

#[test]
fn single_swap_moves_match_the_scan_enumeration_order() {
    let mut rng = StdRng::seed_from_u64(0x5CA7);
    for i in 0..4 {
        let g = gnp(&mut rng, 14 + i, 0.25);
        let csr = g.to_csr();
        let n = g.n() as V;
        for v in 0..n {
            // The reference enumeration: incident edges in CSR order,
            // replacement endpoints ascending, skipping {v, w} — exactly
            // what EdgeSwapScan's candidate sweep visits.
            let mut reference = Vec::new();
            for &w in csr.neighbors(v) {
                for w2 in 0..n {
                    if w2 != v && w2 != w {
                        reference.push((v, w, w2));
                    }
                }
            }
            let moves: Vec<_> = single_swap_moves(&csr, v)
                .into_iter()
                .map(|m| (m.v, m.w, m.w2))
                .collect();
            assert_eq!(moves, reference, "agent {v} on graph {i}");
        }
    }
}

#[test]
fn basic_game_moves_are_the_unfiltered_single_swap_set() {
    let mut rng = StdRng::seed_from_u64(0x5CA8);
    let g = gnp(&mut rng, 16, 0.2);
    let ctx = EvalContext::new(&g);
    for v in 0..g.n() as V {
        assert_eq!(
            GameRules::moves(&SumObjective, &ctx, v),
            single_swap_moves(&g.to_csr(), v)
        );
        assert_eq!(
            GameRules::moves(&MaxObjective, &ctx, v),
            single_swap_moves(&g.to_csr(), v)
        );
    }
}

#[test]
fn one_swap_stability_coincides_with_no_improving_response() {
    let mut rng = StdRng::seed_from_u64(0x5CA9);
    for i in 0..4 {
        // k_swap_audit requires connectivity; trees guarantee it.
        let g = random_tree(&mut rng, 12 + i);
        let ctx = EvalContext::new(&g);
        for v in 0..g.n() as V {
            let stable = k_swap_audit(&g, v, 1).is_stable();
            let response = GameRules::best_response(&MaxObjective, &ctx, v);
            assert_eq!(
                stable,
                response.is_none(),
                "agent {v} on tree {i}: audit and response rule disagree"
            );
        }
        assert_eq!(
            is_k_swap_stable(&g, 1),
            (0..g.n() as V).all(|v| GameRules::best_response(&MaxObjective, &ctx, v).is_none())
        );
    }
}
