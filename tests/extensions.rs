//! Integration tests for the reproduction's extension modules:
//! exact k-swap stability, dynamics trajectories, graph I/O, the
//! equilibrium search scans, and middle-distance concentration.

use bncg::analysis::concentration::concentration_audit;
use bncg::constructions::search::{scan_circulants, scan_generalized_fig3};
use bncg::constructions::torus::rotated_torus;
use bncg::dynamics::trajectory::run_traced;
use bncg::game::kswap::{is_k_swap_stable, k_swap_audit};
use bncg::game::objective::{MaxObjective, SumObjective};
use bncg::game::MaxGame;
use bncg::graph::generators::classic;
use bncg::graph::{graph6, io, DistanceMatrix};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn k_swap_audit_matches_equilibrium_on_torus() {
    // Theorem 12's torus: max equilibrium, hence 1-swap stable everywhere.
    let g = rotated_torus(3);
    assert!(MaxGame::is_equilibrium(&g));
    assert!(is_k_swap_stable(&g, 1));
}

#[test]
fn k_swap_deviation_is_genuine_when_reported() {
    // On a path, the endpoint improves with a single swap; apply the
    // reported deviation and confirm the eccentricity drop.
    let g = classic::path(9);
    let audit = k_swap_audit(&g, 0, 2);
    let (removed, added) = audit.deviation.expect("path endpoint must deviate");
    assert!(added.len() <= removed.len());
    let mut h = g.clone();
    for &w in &removed {
        h.remove_edge(0, w);
    }
    for &t in &added {
        h.add_edge(0, t);
    }
    let before = DistanceMatrix::build(&g.to_csr()).ecc(0).unwrap();
    let after = DistanceMatrix::build(&h.to_csr()).ecc(0).unwrap();
    assert!(after < before, "deviation must strictly shrink ecc");
}

#[test]
fn traced_dynamics_agrees_with_engine_endpoint_class() {
    // Both the traced and plain engines, started from the same tree, must
    // converge to stars (Theorem 1) even if tie-breaking paths differ.
    let start = classic::path(10);
    let traced = run_traced::<SumObjective>(&start, 100);
    assert!(traced.converged);
    assert!(bncg::graph::properties::is_star(&traced.graph));
    let traced_max = run_traced::<MaxObjective>(&start, 100);
    assert!(traced_max.converged);
    let d = DistanceMatrix::build(&traced_max.graph.to_csr())
        .diameter()
        .unwrap();
    assert!(d <= 3, "max-version tree endpoints have diameter <= 3");
}

#[test]
fn selfishness_can_hurt_the_aggregate_in_the_max_game() {
    // Measured finding of this reproduction (240-trajectory probe):
    // round-level total distance is monotone on every sampled SUM
    // trajectory, while MAX dynamics occasionally increase it — evidence
    // that the max game has no social-cost potential at round granularity.
    // Pin both observations on a deterministic sample.
    let mut rng = StdRng::seed_from_u64(0);
    let mut max_nonmonotone = false;
    for _ in 0..60 {
        for (n, extra) in [(10usize, 4usize), (14, 6), (18, 9), (22, 4)] {
            let start = bncg::graph::generators::random::random_connected(&mut rng, n, extra);
            let sum_t = run_traced::<SumObjective>(&start, 60);
            assert!(
                sum_t.total_distance_monotone(),
                "a sum trajectory increased total distance — new behavior, investigate"
            );
            if !run_traced::<MaxObjective>(&start, 60).total_distance_monotone() {
                max_nonmonotone = true;
            }
        }
        if max_nonmonotone {
            break;
        }
    }
    assert!(
        max_nonmonotone,
        "expected some max trajectory to increase total distance (3/240 in the probe)"
    );
}

#[test]
fn search_scans_reproduce_the_repair_story() {
    assert!(scan_generalized_fig3(3).is_empty(), "printed family fails");
    assert_eq!(scan_generalized_fig3(4).len(), 8, "all-odd repairs");
    assert!(scan_circulants(16, 5, 3).is_empty());
}

#[test]
fn concentration_separates_equilibria_from_cycles() {
    let eq = DistanceMatrix::build(&classic::star(64).to_csr());
    let cyc = DistanceMatrix::build(&classic::cycle(64).to_csr());
    let a = concentration_audit(&eq, 0.1).unwrap();
    let b = concentration_audit(&cyc, 0.1).unwrap();
    assert!(a.max_interval_length <= 1);
    assert!(b.max_interval_length > 4 * a.max_interval_length.max(1));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn io_and_graph6_roundtrips_agree(n in 2usize..16, p in 0.1f64..0.9, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = bncg::graph::generators::random::gnp(&mut rng, n, p);
        let via_io = io::parse_edge_list(&io::to_edge_list(&g)).unwrap();
        let via_g6 = graph6::decode(&graph6::encode(&g)).unwrap();
        prop_assert_eq!(&via_io, &g);
        prop_assert_eq!(&via_g6, &g);
    }

    #[test]
    fn k_swap_stability_is_monotone_in_k(seed in any::<u64>()) {
        // If an agent with power k can improve, an agent with power k+1
        // can too (the deviation set only grows).
        let mut rng = StdRng::seed_from_u64(seed);
        let g = bncg::graph::generators::random::random_connected(&mut rng, 8, 3);
        let a1 = k_swap_audit(&g, 0, 1);
        let a2 = k_swap_audit(&g, 0, 2);
        if !a1.is_stable() {
            prop_assert!(!a2.is_stable(), "more power cannot restore stability");
        }
    }
}
