//! Property tests pinning the dynamic-distance subsystem to full APSP
//! rebuilds.
//!
//! `DynamicApsp` repairs only the rows a single-edge mutation invalidates;
//! none of that is allowed to change a single bit of the matrix. These
//! properties replay random swap sequences — on Erdős–Rényi graphs and
//! uniform random trees, through `Swapped`/`Deleted`/`Noop` records alike —
//! and compare the maintained matrix byte-for-byte against
//! `DistanceMatrix::build` of the mutated graph after **every** step, at
//! both fallback-threshold extremes. A deterministic long-run test keeps
//! the total step count ≥ 1000 regardless of proptest case budgets, and
//! context-level properties pin `refresh_after` trajectories to fresh
//! contexts under both objectives.

use bncg::game::context::EvalContext;
use bncg::game::objective::{MaxObjective, Objective, SumObjective};
use bncg::graph::adjacency::Edge;
use bncg::graph::dynamic::{DynamicApsp, RepairStrategy};
use bncg::graph::generators::random::{gnp, random_tree};
use bncg::graph::{DistanceMatrix, Graph, V};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Sparse Erdős–Rényi graph on up to `max_n` vertices (connectivity not
/// required — the subsystem must track unreachable pairs exactly).
fn er_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (6usize..=max_n, any::<u64>()).prop_map(|(n, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = (3.0 / n as f64).min(0.9);
        gnp(&mut rng, n, p)
    })
}

/// Uniform random labeled tree on up to `max_n` vertices.
fn tree(max_n: usize) -> impl Strategy<Value = Graph> {
    (6usize..=max_n, any::<u64>()).prop_map(|(n, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        random_tree(&mut rng, n)
    })
}

/// Picks a random legal swap `(v, w, w2)` of `g`: `vw` an existing edge,
/// `w2` any non-`v` vertex (so deletions — `w2` already adjacent — and
/// no-ops — `w2 == w` — occur alongside proper swaps).
fn random_swap<R: Rng>(rng: &mut R, g: &Graph) -> Option<(V, V, V)> {
    if g.m() == 0 {
        return None;
    }
    let edges = g.edge_vec();
    let e = edges[rng.gen_range(0..edges.len())];
    let (v, w) = if rng.gen_bool(0.5) {
        (e.u, e.v)
    } else {
        (e.v, e.u)
    };
    let n = g.n() as V;
    let mut w2 = rng.gen_range(0..n);
    if w2 == v {
        w2 = if w2 + 1 < n { w2 + 1 } else { 0 };
    }
    if w2 == v {
        return None; // n == 1 has no legal target
    }
    Some((v, w, w2))
}

fn assert_byte_identical(da: &DynamicApsp, g: &Graph, context: &str) {
    let fresh = DistanceMatrix::build(&g.to_csr());
    assert_eq!(
        da.matrix(),
        &fresh,
        "dynamic matrix diverged from full rebuild ({context})"
    );
    fresh.recycle();
}

/// Replays `steps` random swaps on `g`, checking the maintained matrix
/// against a full rebuild after every step. Returns the number of steps
/// actually applied.
fn replay_and_check(mut g: Graph, seed: u64, steps: usize, max_repair_rows: usize) -> usize {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut da = DynamicApsp::build(&g.to_csr());
    da.set_max_repair_rows(max_repair_rows);
    let mut applied = 0;
    for step in 0..steps {
        let Some((v, w, w2)) = random_swap(&mut rng, &g) else {
            break;
        };
        let rec = g.apply_swap(v, w, w2);
        da.apply_swap(&g.to_csr(), &rec);
        applied += 1;
        assert_byte_identical(
            &da,
            &g,
            &format!("step {step}, threshold {max_repair_rows}"),
        );
    }
    applied
}

/// `refresh_after`-maintained context must agree with a fresh context on
/// every audit surface the game uses.
fn assert_context_paths_agree<O: Objective>(ctx: &EvalContext, g: &Graph) {
    let fresh = EvalContext::new(g);
    for v in 0..g.n() as V {
        assert_eq!(
            ctx.base().row(v),
            fresh.base().row(v),
            "base row {v} diverged under {}",
            O::NAME
        );
        assert_eq!(ctx.agent_cost::<O>(v), fresh.agent_cost::<O>(v));
    }
    assert_eq!(
        ctx.find_improving_swap::<O>(),
        fresh.find_improving_swap::<O>(),
        "witness diverged under {}",
        O::NAME
    );
}

/// Replays `steps` random swaps on `g` through **two** maintained
/// matrices — one per repair strategy — asserting after every step that
/// the batched (kernel) walkers, the scalar walkers, and a full rebuild
/// agree byte for byte. Returns the number of steps actually applied.
fn replay_and_check_strategies(
    mut g: Graph,
    seed: u64,
    steps: usize,
    max_repair_rows: usize,
) -> usize {
    let mut rng = StdRng::seed_from_u64(seed);
    let csr0 = g.to_csr();
    let mut scalar = DynamicApsp::build(&csr0);
    scalar.set_repair_strategy(RepairStrategy::Scalar);
    scalar.set_max_repair_rows(max_repair_rows);
    let mut kernel = DynamicApsp::build(&csr0);
    kernel.set_repair_strategy(RepairStrategy::Kernel);
    kernel.set_max_repair_rows(max_repair_rows);
    let mut applied = 0;
    for step in 0..steps {
        let Some((v, w, w2)) = random_swap(&mut rng, &g) else {
            break;
        };
        let rec = g.apply_swap(v, w, w2);
        let csr = g.to_csr();
        scalar.apply_swap(&csr, &rec);
        kernel.apply_swap(&csr, &rec);
        applied += 1;
        assert_eq!(
            kernel.matrix(),
            scalar.matrix(),
            "kernel and scalar strategies diverged (step {step}, threshold {max_repair_rows})"
        );
        assert_eq!(
            kernel.stats().last_repair_candidates,
            scalar.stats().last_repair_candidates,
            "stage A candidate counts diverged (step {step})"
        );
        assert_byte_identical(&kernel, &g, &format!("kernel strategy, step {step}"));
    }
    applied
}

/// Synthesizes one batch of up to `k` proper swaps with pairwise-disjoint
/// edge footprints, each valid against the current state of `g` — the
/// well-formedness `DynamicApsp::apply_batch` requires (mirrors the round
/// engine's conflict resolution without paying best-response sweeps).
fn synth_batch<R: Rng>(rng: &mut R, g: &Graph, k: usize) -> Vec<(V, V, V)> {
    let edges = g.edge_vec();
    if edges.is_empty() {
        return Vec::new();
    }
    let n = g.n() as V;
    let mut touched: Vec<Edge> = Vec::new();
    let mut batch = Vec::new();
    for _ in 0..16 * k {
        if batch.len() == k {
            break;
        }
        let e = edges[rng.gen_range(0..edges.len())];
        let (v, w) = if rng.gen_bool(0.5) {
            (e.u, e.v)
        } else {
            (e.v, e.u)
        };
        let w2 = rng.gen_range(0..n);
        if w2 == v || w2 == w || g.has_edge(v, w2) {
            continue;
        }
        let fp = [Edge::new(v, w), Edge::new(v, w2)];
        if fp.iter().any(|edge| touched.contains(edge)) {
            continue;
        }
        touched.extend_from_slice(&fp);
        batch.push((v, w, w2));
    }
    batch
}

/// Replays `rounds` synthesized swap batches through `apply_batch` under
/// both strategies, checking byte identity to each other and to a full
/// rebuild after every round barrier. Returns total swaps applied.
fn replay_batches_and_check_strategies(
    mut g: Graph,
    seed: u64,
    rounds: usize,
    k: usize,
    max_repair_rows: usize,
) -> usize {
    let mut rng = StdRng::seed_from_u64(seed);
    let csr0 = g.to_csr();
    let mut scalar = DynamicApsp::build(&csr0);
    scalar.set_repair_strategy(RepairStrategy::Scalar);
    scalar.set_max_repair_rows(max_repair_rows);
    let mut kernel = DynamicApsp::build(&csr0);
    kernel.set_repair_strategy(RepairStrategy::Kernel);
    kernel.set_max_repair_rows(max_repair_rows);
    let mut applied = 0;
    for round in 0..rounds {
        let moves = synth_batch(&mut rng, &g, k);
        let batch: Vec<_> = moves
            .iter()
            .map(|&(v, w, w2)| g.apply_swap(v, w, w2))
            .collect();
        let csr = g.to_csr();
        scalar.apply_batch(&csr, &batch);
        kernel.apply_batch(&csr, &batch);
        applied += moves.len();
        assert_eq!(
            kernel.matrix(),
            scalar.matrix(),
            "batch strategies diverged (round {round}, threshold {max_repair_rows})"
        );
        assert_byte_identical(&kernel, &g, &format!("kernel batch, round {round}"));
    }
    applied
}

#[test]
fn five_hundred_plus_swaps_agree_across_repair_strategies() {
    // Deterministic volume floor for the strategy equivalence: ≥ 500
    // verified swaps across ER graphs and trees, at both fallback
    // extremes (never rebuild / always rebuild).
    let mut rng = StdRng::seed_from_u64(0x57AA7);
    let mut total = 0usize;
    for round in 0..2 {
        let er = gnp(&mut rng, 26, 0.13);
        total += replay_and_check_strategies(er.clone(), 0xA0 + round, 90, er.n());
        total += replay_and_check_strategies(er, 0xB0 + round, 40, 0);
        let t = random_tree(&mut rng, 21);
        total += replay_and_check_strategies(t.clone(), 0xC0 + round, 90, t.n());
        total += replay_and_check_strategies(t, 0xD0 + round, 40, 0);
    }
    assert!(
        total >= 500,
        "volume floor not met: only {total} steps verified"
    );
}

#[test]
fn batch_repairs_agree_across_repair_strategies() {
    let mut rng = StdRng::seed_from_u64(0xBA7C4);
    let mut total = 0usize;
    for round in 0..2 {
        let er = gnp(&mut rng, 30, 0.12);
        total += replay_batches_and_check_strategies(er.clone(), 0x10 + round, 8, 5, er.n());
        total += replay_batches_and_check_strategies(er, 0x20 + round, 4, 5, 0);
        let t = random_tree(&mut rng, 24);
        total += replay_batches_and_check_strategies(t.clone(), 0x30 + round, 8, 4, t.n());
        total += replay_batches_and_check_strategies(t, 0x40 + round, 4, 4, 0);
    }
    assert!(total >= 150, "batch volume floor not met: {total} swaps");
}

#[test]
fn thousand_plus_random_swap_steps_stay_byte_identical() {
    // Deterministic volume floor: ≥ 1000 verified steps across ER graphs
    // and trees, with the default fallback threshold in play.
    let mut rng = StdRng::seed_from_u64(0xD15C0);
    let mut total = 0usize;
    for round in 0..3 {
        let er = gnp(&mut rng, 28, 0.12);
        total += replay_and_check(er, 0xE0 + round, 180, 14);
        let t = random_tree(&mut rng, 22);
        total += replay_and_check(t, 0x70 + round, 180, 11);
    }
    assert!(
        total >= 1000,
        "volume floor not met: only {total} steps verified"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn er_swap_sequences_match_rebuild_at_both_threshold_extremes(
        g in er_graph(40),
        seed in any::<u64>(),
    ) {
        // Never fall back …
        replay_and_check(g.clone(), seed, 12, g.n());
        // … and always fall back: identical matrices either way.
        replay_and_check(g, seed, 12, 0);
    }

    #[test]
    fn tree_swap_sequences_match_rebuild_at_both_threshold_extremes(
        t in tree(32),
        seed in any::<u64>(),
    ) {
        replay_and_check(t.clone(), seed, 12, t.n());
        replay_and_check(t, seed, 12, 0);
    }

    #[test]
    fn er_repair_strategies_agree_at_both_threshold_extremes(
        g in er_graph(36),
        seed in any::<u64>(),
    ) {
        replay_and_check_strategies(g.clone(), seed, 10, g.n());
        replay_and_check_strategies(g, seed, 10, 0);
    }

    #[test]
    fn tree_repair_strategies_agree_at_both_threshold_extremes(
        t in tree(30),
        seed in any::<u64>(),
    ) {
        replay_and_check_strategies(t.clone(), seed, 10, t.n());
        replay_and_check_strategies(t, seed, 10, 0);
    }

    #[test]
    fn fallback_boundary_is_exact(g in er_graph(32), seed in any::<u64>()) {
        // Find a step with a non-trivial repair set, then re-apply it with
        // the threshold pinned exactly at, and one below, the candidate
        // count: the path taken must flip, the matrix must not change.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = g;
        let mut da = DynamicApsp::build(&g.to_csr());
        da.set_max_repair_rows(g.n());
        for _ in 0..24 {
            let Some((v, w, w2)) = random_swap(&mut rng, &g) else { break };
            let before = g.clone();
            let rec = g.apply_swap(v, w, w2);
            let csr = g.to_csr();
            da.apply_swap(&csr, &rec);
            let candidates = da.stats().last_repair_candidates;
            if candidates >= 1 && !da.stats().last_was_rebuild {
                let mut at = DynamicApsp::build(&before.to_csr());
                at.set_max_repair_rows(candidates);
                at.apply_swap(&csr, &rec);
                prop_assert!(!at.stats().last_was_rebuild);
                prop_assert_eq!(at.matrix(), da.matrix());

                let mut below = DynamicApsp::build(&before.to_csr());
                below.set_max_repair_rows(candidates - 1);
                below.apply_swap(&csr, &rec);
                prop_assert!(below.stats().last_was_rebuild);
                prop_assert_eq!(below.matrix(), da.matrix());
                break;
            }
        }
    }

    #[test]
    fn maintained_context_matches_fresh_context_on_er_graphs(
        g in er_graph(28),
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = g;
        let mut ctx = EvalContext::new(&g);
        ctx.base(); // force the matrix so every move exercises the repair
        for _ in 0..8 {
            let Some((v, w, w2)) = random_swap(&mut rng, &g) else { break };
            let rec = g.apply_swap(v, w, w2);
            ctx.refresh_after(&g, &rec);
            assert_context_paths_agree::<SumObjective>(&ctx, &g);
            assert_context_paths_agree::<MaxObjective>(&ctx, &g);
        }
    }

    #[test]
    fn maintained_context_matches_fresh_context_on_trees(
        t in tree(24),
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = t;
        let mut ctx = EvalContext::new(&g);
        ctx.base();
        for _ in 0..8 {
            let Some((v, w, w2)) = random_swap(&mut rng, &g) else { break };
            let rec = g.apply_swap(v, w, w2);
            ctx.refresh_after(&g, &rec);
            assert_context_paths_agree::<SumObjective>(&ctx, &g);
            assert_context_paths_agree::<MaxObjective>(&ctx, &g);
        }
    }
}
