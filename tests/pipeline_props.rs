//! Property sweep pinning the pipelined round engine to the serial one,
//! byte for byte.
//!
//! The pipelined engine (`bncg::dynamics::service`) overlaps each round's
//! live repair and bookkeeping with the next round's proposal sweep on a
//! lockstep snapshot context. Its claim is *byte identity*: same accepted
//! moves, same final graph, same outcome, same per-round records as the
//! serial [`RoundDynamics`] — the overlap may only move work in time,
//! never change it. This sweep replays both engines over Erdős–Rényi
//! graphs and uniform random trees, under both objectives, both response
//! rules, and both fallback-threshold extremes (0 = every barrier
//! rebuilds, n = never fall back), comparing every [`RoundRecord`] modulo
//! the process-global phase *timings* (wall-clock, and doubled by design
//! under pipelining — see the service module docs). A deterministic
//! volume floor keeps the sweep at 500+ verified rounds.

use bncg::dynamics::engine::{Outcome, Response};
use bncg::dynamics::rounds::{RoundConfig, RoundDynamics};
use bncg::dynamics::service::{PipelinedRoundDynamics, RoundService, ServiceConfig};
use bncg::dynamics::sink::{MemorySink, RoundRecord};
use bncg::game::objective::{MaxObjective, Objective, SumObjective};
use bncg::game::rules::GameRules;
use bncg::graph::generators::random::{gnp, random_tree};
use bncg::graph::Graph;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Asserts two record streams are identical modulo the phase timings.
fn assert_records_match(pipelined: &[RoundRecord], serial: &[RoundRecord], context: &str) {
    assert_eq!(
        pipelined.len(),
        serial.len(),
        "round counts diverged ({context})"
    );
    for (p, s) in pipelined.iter().zip(serial) {
        let mut s = *s;
        s.phases = p.phases; // wall-clock, process-global — never byte-stable
        assert_eq!(*p, s, "record diverged at round {} ({context})", p.round);
    }
}

/// [`assert_records_match`], additionally normalizing the `last_*` repair
/// gauges. Those describe the maintained matrix's *most recent* repair —
/// a lifetime gauge, not a per-round counter — so a session continuing on
/// a warm matrix legitimately reports the previous session's last repair
/// where a fresh engine reports none. Every counter field stays strict.
fn assert_records_match_across_sessions(
    continued: &[RoundRecord],
    fresh: &[RoundRecord],
    context: &str,
) {
    assert_eq!(
        continued.len(),
        fresh.len(),
        "round counts diverged ({context})"
    );
    for (p, s) in continued.iter().zip(fresh) {
        let mut s = *s;
        s.phases = p.phases;
        s.repair.last_repair_candidates = p.repair.last_repair_candidates;
        s.repair.last_rows_repaired = p.repair.last_rows_repaired;
        s.repair.last_rows_blended = p.repair.last_rows_blended;
        s.repair.last_batch_swaps = p.repair.last_batch_swaps;
        s.repair.last_was_rebuild = p.repair.last_was_rebuild;
        assert_eq!(*p, s, "record diverged at round {} ({context})", p.round);
    }
}

/// Runs `start` through the serial and the pipelined engine under the
/// same configuration (and optional fallback-threshold override) and
/// asserts byte identity of outcome, graph, counters, and records.
/// Returns the number of rounds both engines executed.
fn assert_engines_agree<O: Objective + GameRules + Default>(
    start: &Graph,
    config: RoundConfig,
    threshold: Option<usize>,
    context: &str,
) -> usize {
    let mut serial = RoundService::<O>::new(
        start,
        ServiceConfig {
            rounds: config,
            pipelined: false,
        },
    );
    let mut pipelined = RoundService::<O>::new(
        start,
        ServiceConfig {
            rounds: config,
            pipelined: true,
        },
    );
    if let Some(rows) = threshold {
        serial.set_max_repair_rows(rows);
        pipelined.set_max_repair_rows(rows);
    }
    let mut serial_sink = MemorySink::new();
    let mut pipelined_sink = MemorySink::new();
    let expected = serial.run_session(&mut serial_sink).result;
    let got = pipelined.run_session(&mut pipelined_sink).result;
    assert_eq!(
        got.graph, expected.graph,
        "final graph diverged ({context})"
    );
    assert_eq!(
        got.outcome, expected.outcome,
        "outcome diverged ({context})"
    );
    assert_eq!(
        got.rounds, expected.rounds,
        "round count diverged ({context})"
    );
    assert_eq!(
        got.moves_proposed, expected.moves_proposed,
        "proposal count diverged ({context})"
    );
    assert_eq!(
        got.moves_applied, expected.moves_applied,
        "applied count diverged ({context})"
    );
    assert_eq!(
        got.cycle_period, expected.cycle_period,
        "cycle period diverged ({context})"
    );
    assert_eq!(
        got.repair, expected.repair,
        "repair stats diverged ({context})"
    );
    assert_records_match(&pipelined_sink.records, &serial_sink.records, context);
    got.rounds
}

/// One family × objective replay at both threshold extremes plus the
/// default, with cycle detection both on (natural termination) and off
/// (bounded replay that keeps oscillators running for volume).
fn replay_family<O: Objective + GameRules + Default>(start: &Graph, label: &str) -> usize {
    let n = start.n();
    let natural = RoundConfig::default();
    let bounded = RoundConfig {
        max_rounds: 24,
        detect_cycles: false,
        ..RoundConfig::default()
    };
    let first_improving = RoundConfig {
        response: Response::FirstImproving,
        ..RoundConfig::default()
    };
    let mut rounds = 0usize;
    rounds += assert_engines_agree::<O>(start, natural, None, &format!("{label}, natural"));
    rounds += assert_engines_agree::<O>(
        start,
        bounded,
        Some(0),
        &format!("{label}, bounded, threshold 0"),
    );
    rounds += assert_engines_agree::<O>(
        start,
        bounded,
        Some(n),
        &format!("{label}, bounded, threshold n"),
    );
    rounds += assert_engines_agree::<O>(
        start,
        first_improving,
        None,
        &format!("{label}, first-improving"),
    );
    rounds
}

#[test]
fn five_hundred_plus_pipelined_rounds_stay_byte_identical() {
    // Deterministic volume floor: ≥ 500 rounds verified across ER graphs
    // and trees, both objectives, both threshold extremes.
    let mut rng = StdRng::seed_from_u64(0x0E11_0E11);
    let mut total = 0usize;
    for i in 0..8 {
        let er = gnp(&mut rng, 20 + 2 * i, 0.15);
        total += replay_family::<SumObjective>(&er, "er/sum");
        total += replay_family::<MaxObjective>(&er, "er/max");
        let t = random_tree(&mut rng, 18 + 2 * i);
        total += replay_family::<SumObjective>(&t, "tree/sum");
        total += replay_family::<MaxObjective>(&t, "tree/max");
    }
    assert!(
        total >= 500,
        "volume floor not met: only {total} rounds verified"
    );
}

#[test]
fn one_shot_pipelined_engine_matches_the_serial_engine_exactly() {
    // The wrapper with the serial calling convention, against the actual
    // serial engine (not the serial service path) — same records, same
    // result, on starts that converge, oscillate, and run long.
    let mut rng = StdRng::seed_from_u64(0x51DE);
    for i in 0..4u64 {
        let start = gnp(&mut rng, 24, 0.14);
        let serial = RoundDynamics::<SumObjective>::new(RoundConfig::default());
        let mut serial_sink = MemorySink::new();
        let expected = serial.run_with_sink(&start, &mut serial_sink);
        let pipelined = PipelinedRoundDynamics::<SumObjective>::new(RoundConfig::default());
        let mut pipelined_sink = MemorySink::new();
        let got = pipelined.run_with_sink(&start, &mut pipelined_sink);
        assert_eq!(got.graph, expected.graph, "seed {i}");
        assert_eq!(got.outcome, expected.outcome, "seed {i}");
        assert_eq!(got.rounds, expected.rounds, "seed {i}");
        assert_eq!(got.cycle_period, expected.cycle_period, "seed {i}");
        assert_eq!(got.repair, expected.repair, "seed {i}");
        assert_records_match(
            &pipelined_sink.records,
            &serial_sink.records,
            &format!("one-shot seed {i}"),
        );
    }
}

#[test]
fn restartless_sessions_match_fresh_serial_runs_round_for_round() {
    // The amortization claim, verified for correctness: continuing from a
    // converged state must behave exactly like a fresh serial engine from
    // that state (one empty converged round), with no rebuild anywhere.
    let mut rng = StdRng::seed_from_u64(0xA11C);
    let start = random_tree(&mut rng, 24);
    let mut service = RoundService::<SumObjective>::new(
        &start,
        ServiceConfig {
            rounds: RoundConfig::default(),
            pipelined: true,
        },
    );
    let first = service.run_session_plain();
    for session in 0..3 {
        let state = service.graph().clone();
        let mut service_sink = MemorySink::new();
        let continued = service.run_session(&mut service_sink).result;
        let mut fresh_sink = MemorySink::new();
        let fresh = RoundDynamics::<SumObjective>::new(RoundConfig::default())
            .run_with_sink(&state, &mut fresh_sink);
        assert_eq!(continued.graph, fresh.graph, "session {session}");
        assert_eq!(continued.outcome, fresh.outcome, "session {session}");
        assert_eq!(continued.rounds, fresh.rounds, "session {session}");
        assert_records_match_across_sessions(
            &service_sink.records,
            &fresh_sink.records,
            &format!("session {session}"),
        );
    }
    // One APSP build total: the first session's repair counters already
    // include zero rebuilds, and later sessions add none.
    assert_eq!(first.result.repair.full_rebuilds, 0);
    assert_eq!(service.repair_totals().full_rebuilds, 0);
    assert!(matches!(
        first.result.outcome,
        Outcome::Converged | Outcome::Cycled
    ));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn er_pipelined_matches_serial(n in 10usize..=28, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = gnp(&mut rng, n, (3.0 / n as f64).min(0.9));
        assert_engines_agree::<SumObjective>(
            &g, RoundConfig::default(), None, "proptest er/sum");
        assert_engines_agree::<MaxObjective>(
            &g, RoundConfig::default(), Some(0), "proptest er/max, threshold 0");
    }

    #[test]
    fn tree_pipelined_matches_serial(n in 10usize..=26, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let t = random_tree(&mut rng, n);
        assert_engines_agree::<MaxObjective>(
            &t, RoundConfig::default(), None, "proptest tree/max");
        assert_engines_agree::<SumObjective>(
            &t, RoundConfig::default(), Some(n), "proptest tree/sum, threshold n");
    }
}
