//! Deterministic fault-injection suite (requires `--features testkit`).
//!
//! Each test installs a [`FaultPlan`](bncg::testkit::faults::FaultPlan)
//! and drives the round service through the injected failure: journal
//! write errors must degrade the stream without stopping the dynamics, a
//! kill between the journal commit and the matrix apply must leave a
//! resumable journal whose continuation is byte-identical to the
//! uninterrupted run, a panic inside a pool job must neither deadlock
//! nor poison the worker pool, and injected row corruption must be
//! detected by the divergence audit within its cadence and healed
//! row-wise — no full-context rebuild.
//!
//! Fault plans are process-global (the pool threads must see them), so
//! `with_plan` sections serialize; this binary is the dedicated home for
//! them per the `bncg_testkit::faults` scope rules.

#![cfg(feature = "testkit")]

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use bncg::dynamics::rounds::RoundConfig;
use bncg::dynamics::service::{AuditPolicy, JournalOptions, RoundService, ServiceConfig};
use bncg::dynamics::sink::MemorySink;
use bncg::game::objective::{MaxObjective, SumObjective};
use bncg::graph::generators::random::{gnp, random_tree};
use bncg::testkit::faults::{self, FaultPlan};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn temp_path(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let id = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("bncg-fault-{}-{tag}-{id}.wal", std::process::id()))
}

#[test]
fn journal_write_failure_degrades_the_stream_but_not_the_dynamics() {
    let mut rng = StdRng::seed_from_u64(0xFA01);
    let start = gnp(&mut rng, 20, 0.15);
    // Reference: the same start without a journal.
    let expected = RoundService::<SumObjective>::new(&start, ServiceConfig::default())
        .run_session_plain()
        .result;

    let path = temp_path("ewrite");
    let mut service = RoundService::<SumObjective>::new(&start, ServiceConfig::default());
    service
        .attach_journal(&path, JournalOptions::default())
        .expect("journal");
    let report = faults::with_plan(
        // The seed record is hit 0; fail the first round barrier's write.
        FaultPlan::new().fail_nth("journal.append", 1),
        || service.run_session_plain(),
    );
    // The stream is degraded and says so loudly...
    let err = service
        .journal_error()
        .expect("injected failure must stick");
    assert_eq!(err.to_string(), "injected journal write failure");
    // ...but the dynamics were never interrupted and end identically.
    assert!(!report.interrupted);
    assert!(!service.is_killed());
    assert_eq!(report.result.graph, expected.graph);
    assert_eq!(report.result.outcome, expected.outcome);
    assert_eq!(report.result.rounds, expected.rounds);
    fs::remove_file(&path).ok();
}

#[test]
fn a_kill_between_journal_commit_and_apply_resumes_byte_identically() {
    let mut rng = StdRng::seed_from_u64(0xFA02);
    let mut kills = 0usize;
    for (i, pipelined) in [(0u64, false), (1, true), (2, false), (3, true)] {
        let start = if i % 2 == 0 {
            gnp(&mut rng, 18 + i as usize, 0.16)
        } else {
            random_tree(&mut rng, 18 + i as usize)
        };
        let config = ServiceConfig {
            rounds: RoundConfig::default(),
            pipelined,
        };
        // Uninterrupted reference run, journaled (journal contents aside,
        // journaling must not perturb the dynamics).
        let ref_path = temp_path("kill-ref");
        let mut reference = RoundService::<MaxObjective>::new(&start, config);
        reference
            .attach_journal(&ref_path, JournalOptions::default())
            .expect("journal");
        let mut ref_sink = MemorySink::new();
        let full = reference.run_session(&mut ref_sink).result;
        let rounds_total = reference.rounds_total();
        drop(reference);

        // Kill at every achievable barrier: the fault fires *between* the
        // fsync'd journal append and the matrix apply — the worst-case
        // crash point the WAL discipline is designed for.
        for kill_at in 0..ref_sink.records.len() as u64 {
            let path = temp_path("kill");
            let mut victim = RoundService::<MaxObjective>::new(&start, config);
            victim
                .attach_journal(&path, JournalOptions::default())
                .expect("journal");
            let report = faults::with_plan(
                FaultPlan::new().fail_nth("service.kill.after_journal", kill_at),
                || victim.run_session_plain(),
            );
            if !victim.is_killed() {
                // Fewer barriers than records (the converged tail round
                // journals nothing): this plan never fired.
                fs::remove_file(&path).ok();
                continue;
            }
            assert!(report.interrupted, "a killed session reports interrupted");
            kills += 1;
            drop(victim);

            let (mut resumed, resume_report) =
                RoundService::<MaxObjective>::resume(&path).expect("resume after kill");
            let k = resume_report.midsession.expect("killed mid-session");
            assert_eq!(
                k as u64,
                kill_at + 1,
                "the killed round was already on disk"
            );
            let mut cont_sink = MemorySink::new();
            let cont = resumed.run_session(&mut cont_sink).result;
            assert_eq!(cont.graph, full.graph, "kill at {kill_at}");
            assert_eq!(cont.outcome, full.outcome, "kill at {kill_at}");
            assert_eq!(resumed.rounds_total(), rounds_total, "kill at {kill_at}");
            assert_eq!(
                cont_sink.records.len(),
                ref_sink.records.len() - k,
                "kill at {kill_at}"
            );
            for (c, r) in cont_sink.records.iter().zip(&ref_sink.records[k..]) {
                let mut r = *r;
                r.phases = c.phases;
                r.repair.last_repair_candidates = c.repair.last_repair_candidates;
                r.repair.last_rows_repaired = c.repair.last_rows_repaired;
                r.repair.last_rows_blended = c.repair.last_rows_blended;
                r.repair.last_batch_swaps = c.repair.last_batch_swaps;
                r.repair.last_was_rebuild = c.repair.last_was_rebuild;
                assert_eq!(*c, r, "record diverged, kill at {kill_at}");
            }
            fs::remove_file(&path).ok();
        }
        fs::remove_file(&ref_path).ok();
    }
    assert!(
        kills >= 4,
        "the sweep must actually kill sessions, not skip them (killed {kills})"
    );
}

#[test]
fn a_panicking_pool_job_neither_deadlocks_nor_poisons_the_pool() {
    // Pick a start that takes several rounds to settle, so the first
    // pipelined barrier (where the fault fires) is actually reached — a
    // lucky already-at-equilibrium draw would never enter a pool job.
    let mut rng = StdRng::seed_from_u64(0xFA03);
    let start = std::iter::from_fn(|| Some(random_tree(&mut rng, 22)))
        .find(|s| {
            RoundService::<SumObjective>::new(s, ServiceConfig::default())
                .run_session_plain()
                .result
                .rounds
                >= 3
        })
        .expect("some tree takes >= 3 rounds");
    let config = ServiceConfig {
        rounds: RoundConfig::default(),
        pipelined: true,
    };
    let mut victim = RoundService::<SumObjective>::new(&start, config);
    let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        faults::with_plan(FaultPlan::new().fail_nth("service.pool.panic", 0), || {
            victim.run_session_plain()
        })
    }));
    assert!(attempt.is_err(), "the injected panic must surface");
    drop(victim); // a panicked service is dead; recovery is via resume

    // The pool must come back healthy: a fresh pipelined service on the
    // same pool finishes and matches the serial reference.
    let serial = RoundService::<SumObjective>::new(&start, ServiceConfig::default())
        .run_session_plain()
        .result;
    let again = RoundService::<SumObjective>::new(&start, config)
        .run_session_plain()
        .result;
    assert_eq!(again.graph, serial.graph);
    assert_eq!(again.outcome, serial.outcome);
    assert_eq!(again.rounds, serial.rounds);
}

#[test]
fn injected_corruption_is_detected_within_the_audit_cadence_and_healed_row_wise() {
    let mut rng = StdRng::seed_from_u64(0xFA04);
    let start = gnp(&mut rng, 24, 0.15);
    let mut service = RoundService::<SumObjective>::new(&start, ServiceConfig::default());
    let _ = service.run_session_plain();
    let n = service.graph().n();
    service.set_audit_policy(AuditPolicy {
        every_rounds: 1,
        stripe_rows: n, // full-matrix stripe: detection within one check
    });
    let rebuilds_before = service.repair_totals().full_rebuilds;

    // Flip one maintained distance (a bit-flip / torn write stand-in).
    service.corrupt_live_entry(0, (n - 1) as bncg::graph::V, 1);
    assert!(!service.audit_degraded());
    let healed = service.run_audit();
    assert!(healed >= 1, "the corrupted row must be rebuilt");
    let stats = service.audit_stats();
    assert_eq!(stats.checks, 1);
    assert!(stats.row_mismatches >= 1);
    assert_eq!(stats.heals, healed as u64);
    assert!(
        service.audit_degraded(),
        "divergence quarantines the service"
    );

    // The heal must be row-wise: no full-context rebuild anywhere.
    assert_eq!(service.repair_totals().full_rebuilds, rebuilds_before);

    // A clean audit lifts the quarantine...
    assert_eq!(service.run_audit(), 0);
    assert!(!service.audit_degraded());
    // ...and the healed service keeps working exactly like a fresh one.
    let fresh = RoundService::<SumObjective>::new(service.graph(), ServiceConfig::default())
        .run_session_plain()
        .result;
    let healed_run = service.run_session_plain().result;
    assert_eq!(healed_run.graph, fresh.graph);
    assert_eq!(healed_run.outcome, fresh.outcome);
}

#[test]
fn corruption_mid_run_degrades_pipelining_until_a_clean_audit_passes() {
    let mut rng = StdRng::seed_from_u64(0xFA05);
    let start = gnp(&mut rng, 22, 0.16);
    let config = ServiceConfig {
        rounds: RoundConfig {
            max_rounds: 6,
            detect_cycles: false,
            ..RoundConfig::default()
        },
        pipelined: true,
    };
    let n = start.n();
    let mut service = RoundService::<SumObjective>::new(&start, config);
    service.set_audit_policy(AuditPolicy {
        every_rounds: 1,
        stripe_rows: n,
    });
    service.corrupt_live_entry(1, (n - 2) as bncg::graph::V, 1);
    // The in-run audit detects the divergence after the first round and
    // heals it; the session finishes despite starting from a corrupted
    // matrix.
    let report = service.run_session_plain();
    let stats = service.audit_stats();
    assert!(stats.checks >= 1);
    assert!(
        stats.row_mismatches >= 1,
        "in-run audit must catch the flip"
    );
    assert!(stats.heals >= 1);
    assert!(!report.interrupted);
    // Quarantine ends with a clean audit — by now either already lifted
    // in-run or lifted by one more explicit check.
    if service.audit_degraded() {
        assert_eq!(service.run_audit(), 0);
    }
    assert!(!service.audit_degraded());
    // The maintained matrix is clean again: a final full-stripe audit
    // heals nothing.
    assert_eq!(service.run_audit(), 0);
}
