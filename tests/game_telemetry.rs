//! The 2-neighborhood game's no-APSP guarantee, asserted through the
//! `apsp.*` telemetry counters.
//!
//! [`TwoNeighborhoodGame`] reports `needs_apsp() == false`, and every
//! engine gates its eager matrix builds, checkpoint CRCs, and resume
//! verification on that flag — so a full run across the engine family
//! (serial rounds, hand-stepped rounds, the service, the pipelined
//! service, a journal resume) must never build, rebuild, or repair a
//! distance matrix. Telemetry counters are process-global, so this
//! assertion lives alone in its own test binary: the single `#[test]`
//! below runs the whole sequence serially and owns the counters for the
//! process lifetime.

#![cfg(feature = "telemetry")]

use bncg::conformance::trace_engines;
use bncg::dynamics::engine::Response;
use bncg::dynamics::rounds::{RoundConfig, RoundDynamics};
use bncg::game::objective::SumObjective;
use bncg::game::rules::TwoNeighborhoodGame;
use bncg::graph::generators::random::gnp;
use bncg::telemetry;
use bncg::testkit::conformance::assert_equivalent;
use rand::rngs::StdRng;
use rand::SeedableRng;

const APSP_COUNTERS: [&str; 4] = [
    "apsp.builds",
    "apsp.rebuilds",
    "apsp.rows_repaired",
    "apsp.rows_blended",
];

fn apsp_totals() -> [u64; 4] {
    APSP_COUNTERS.map(|name| telemetry::counter(name).get())
}

#[test]
fn two_neighborhood_game_never_touches_the_apsp_subsystem() {
    let mut rng = StdRng::seed_from_u64(0x2B2B);
    let before = apsp_totals();

    // The full engine fan-out — including a journaled crash/resume —
    // under the 2-neighborhood rules, on graphs busy enough to run
    // several rounds each.
    for i in 0..3 {
        let g = gnp(&mut rng, 20 + 2 * i, 0.15);
        for response in [Response::Best, Response::FirstImproving] {
            let traces = trace_engines(
                &TwoNeighborhoodGame,
                &g,
                RoundConfig {
                    response,
                    ..RoundConfig::default()
                },
            );
            assert_equivalent(&traces, "2nb telemetry fan-out");
        }
    }

    let after = apsp_totals();
    for (i, name) in APSP_COUNTERS.iter().enumerate() {
        assert_eq!(
            after[i] - before[i],
            0,
            "{name} moved during a 2-neighborhood run: the no-APSP fast \
             path regressed"
        );
    }

    // Sanity that the counters are live at all: the basic game on the
    // same start must build (and, over rounds, repair) the matrix.
    let g = gnp(&mut rng, 20, 0.15);
    RoundDynamics::<SumObjective>::new(RoundConfig::default()).run(&g);
    let basic = apsp_totals();
    assert!(
        basic[0] > after[0],
        "apsp.builds must move under the basic game — is telemetry wired?"
    );
}
