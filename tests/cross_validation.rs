//! Property-based cross-validation: the fast equilibrium machinery versus
//! the literal-definition reference implementation, on random graphs.
//!
//! The fast path's correctness rests on the single-edge insertion identity
//! (`DESIGN.md` §4); the reference path uses none of it. Agreement across
//! random graphs is the load-bearing evidence that every experiment in
//! this repository measures what the paper defines.

use bncg::game::equilibrium::{MaxGame, SumGame};
use bncg::game::evaluator::{agent_cost, EdgeSwapScan};
use bncg::game::objective::{MaxObjective, SumObjective};
use bncg::game::stability;
use bncg::game::verify;
use bncg::graph::generators::random::random_connected;
use bncg::graph::{DistanceMatrix, Graph, V};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Random connected graph strategy: (n, extra edges, seed) -> Graph.
fn connected_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (4usize..=max_n, 0usize..8, any::<u64>()).prop_map(|(n, extra, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        random_connected(&mut rng, n, extra)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fast_and_reference_sum_equilibrium_agree(g in connected_graph(9)) {
        prop_assert_eq!(
            SumGame::is_equilibrium(&g),
            verify::reference_is_sum_equilibrium(&g)
        );
    }

    #[test]
    fn fast_and_reference_max_equilibrium_agree(g in connected_graph(8)) {
        prop_assert_eq!(
            MaxGame::is_equilibrium(&g),
            verify::reference_is_max_equilibrium(&g)
        );
    }

    #[test]
    fn deletion_critical_and_insertion_stable_agree(g in connected_graph(8)) {
        prop_assert_eq!(
            stability::is_deletion_critical(&g),
            verify::reference_is_deletion_critical(&g)
        );
        prop_assert_eq!(
            stability::is_insertion_stable(&g),
            verify::reference_is_insertion_stable(&g)
        );
    }

    #[test]
    fn swap_scan_matches_brute_force_costs(g in connected_graph(9), pick in any::<u64>()) {
        let edges = g.edge_vec();
        prop_assume!(!edges.is_empty());
        let e = edges[(pick as usize) % edges.len()];
        let csr = g.to_csr();
        let scan = EdgeSwapScan::new(&csr, e.u, e.v);
        for agent in [e.u, e.v] {
            for w2 in 0..g.n() as V {
                if w2 == agent { continue; }
                let mut h = g.clone();
                let rec = h.apply_swap(agent, e.other(agent), w2);
                let brute_sum = agent_cost::<SumObjective>(&h, agent);
                let brute_max = agent_cost::<MaxObjective>(&h, agent);
                h.undo_swap(rec);
                if w2 == e.other(agent) {
                    continue; // no-op swap, scan treats separately
                }
                prop_assert_eq!(scan.swap_cost::<SumObjective>(agent, w2), brute_sum);
                prop_assert_eq!(scan.swap_cost::<MaxObjective>(agent, w2), brute_max);
            }
        }
    }

    #[test]
    fn improving_swap_witnesses_are_genuine(g in connected_graph(10)) {
        if let Some(s) = SumGame::find_improving_swap(&g) {
            let before = agent_cost::<SumObjective>(&g, s.mv.v);
            let mut h = g.clone();
            s.mv.apply(&mut h);
            let after = agent_cost::<SumObjective>(&h, s.mv.v);
            prop_assert_eq!(before, s.old_cost);
            prop_assert_eq!(after, s.new_cost);
            prop_assert!(after < before);
        }
    }

    #[test]
    fn insertion_identity_on_random_graphs(g in connected_graph(10), pick in any::<u64>()) {
        let n = g.n() as V;
        let dm = DistanceMatrix::build(&g.to_csr());
        let u = (pick % u64::from(n)) as V;
        let v = ((pick >> 16) % u64::from(n)) as V;
        prop_assume!(u != v && !g.has_edge(u, v));
        let mut h = g.clone();
        h.add_edge(u, v);
        let dmh = DistanceMatrix::build(&h.to_csr());
        prop_assert_eq!(dm.sum_from_with_insertion(u, v), dmh.sum_from(u));
        prop_assert_eq!(dm.ecc_with_insertion(u, v), dmh.ecc(u));
    }

    #[test]
    fn dynamics_preserve_edge_count_and_reach_equilibrium(g in connected_graph(10)) {
        use bncg::dynamics::{DynamicsConfig, Outcome, SwapDynamics};
        let m_before = g.m();
        let engine = SwapDynamics::<SumObjective>::new(DynamicsConfig::default());
        let mut rng = StdRng::seed_from_u64(99);
        let result = engine.run(&g, &mut rng);
        prop_assert_eq!(result.graph.m(), m_before, "swaps preserve edge count");
        if result.outcome == Outcome::Converged {
            prop_assert!(SumGame::is_equilibrium(&result.graph));
        }
    }

    #[test]
    fn min_insertions_is_consistent_with_single_insertion_stability(g in connected_graph(9)) {
        let dm = DistanceMatrix::build(&g.to_csr());
        for v in 0..g.n() as V {
            let min_ins = stability::min_insertions_to_shrink_ecc(&dm, v, 2);
            let single = stability::insertion_violation_at(&dm, &g, v);
            // A single-insertion violation exists iff the minimum cover is 1.
            prop_assert_eq!(single.is_some(), min_ins == Some(1));
        }
    }
}
