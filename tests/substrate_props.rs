//! Property-based tests for the graph substrate: metric axioms, codec
//! round-trips, canonical-form invariance, and algorithm agreement.

use bncg::graph::canon::{tree_canonical, trees_isomorphic};
use bncg::graph::distance::diameter_ifub;
use bncg::graph::generators::prufer::{prufer_decode, prufer_encode};
use bncg::graph::generators::random::{gnp, random_tree};
use bncg::graph::girth::girth;
use bncg::graph::{graph6, DistanceMatrix, Graph, V};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arbitrary_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (2usize..=max_n, 0.05f64..0.9, any::<u64>()).prop_map(|(n, p, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        gnp(&mut rng, n, p)
    })
}

fn arbitrary_tree(max_n: usize) -> impl Strategy<Value = Graph> {
    (2usize..=max_n, any::<u64>()).prop_map(|(n, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        random_tree(&mut rng, n)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bfs_metric_is_symmetric_and_triangle(g in arbitrary_graph(12)) {
        let dm = DistanceMatrix::build(&g.to_csr());
        let n = g.n() as V;
        for u in 0..n {
            prop_assert_eq!(dm.get(u, u), 0);
            for v in 0..n {
                prop_assert_eq!(dm.get(u, v), dm.get(v, u), "symmetry");
            }
        }
        // Triangle inequality along edges: |d(u,x) - d(v,x)| <= 1 for uv in E.
        for e in g.edge_vec() {
            for x in 0..n {
                let (a, b) = (dm.get(e.u, x), dm.get(e.v, x));
                if a != bncg::graph::UNREACHABLE && b != bncg::graph::UNREACHABLE {
                    prop_assert!(a.abs_diff(b) <= 1, "edge-Lipschitz violated");
                }
            }
        }
    }

    #[test]
    fn prufer_roundtrip(t in arbitrary_tree(16)) {
        let seq = prufer_encode(&t);
        let back = prufer_decode(&seq, t.n());
        prop_assert_eq!(t, back);
    }

    #[test]
    fn prufer_decode_encode_inverse(seq in proptest::collection::vec(0u32..7, 5)) {
        // Any sequence over {0..n} of length n-2 is a valid tree code.
        let t = prufer_decode(&seq, 7);
        prop_assert!(bncg::graph::properties::is_tree(&t));
        prop_assert_eq!(prufer_encode(&t), seq);
    }

    #[test]
    fn graph6_roundtrip(g in arbitrary_graph(20)) {
        let s = graph6::encode(&g);
        let back = graph6::decode(&s).expect("self-produced string decodes");
        prop_assert_eq!(g, back);
    }

    #[test]
    fn ahu_canonical_is_relabeling_invariant(t in arbitrary_tree(12), seed in any::<u64>()) {
        use rand::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut perm: Vec<V> = (0..t.n() as V).collect();
        perm.shuffle(&mut rng);
        let relabeled = t.relabel(&perm);
        prop_assert!(trees_isomorphic(&t, &relabeled));
        prop_assert_eq!(tree_canonical(&t), tree_canonical(&relabeled));
    }

    #[test]
    fn ifub_matches_apsp_diameter(g in arbitrary_graph(14)) {
        let csr = g.to_csr();
        let dm = DistanceMatrix::build(&csr);
        prop_assert_eq!(diameter_ifub(&csr), dm.diameter());
    }

    #[test]
    fn girth_matches_brute_force(g in arbitrary_graph(9)) {
        // Brute force: try all vertex subsets of size >= 3 forming cycles is
        // exponential; instead verify via a simple DFS-based enumeration of
        // shortest cycle through each edge using BFS in G - e.
        let mut brute: Option<u32> = None;
        for e in g.edge_vec() {
            let mut h = g.clone();
            h.remove_edge(e.u, e.v);
            let d = bncg::graph::bfs_distances(&h.to_csr(), e.u);
            let dv = d[e.v as usize];
            if dv != bncg::graph::UNREACHABLE {
                let cycle = dv + 1;
                brute = Some(brute.map_or(cycle, |b| b.min(cycle)));
            }
        }
        prop_assert_eq!(girth(&g), brute);
    }

    #[test]
    fn power_graph_distance_law(g in arbitrary_graph(12), x in 1u32..5) {
        let dm = DistanceMatrix::build(&g.to_csr());
        prop_assume!(dm.is_connected() && g.n() >= 2);
        let gx = bncg::graph::ops::power_from_matrix(&dm, x);
        let dmx = DistanceMatrix::build(&gx.to_csr());
        for u in 0..g.n() as V {
            for v in 0..g.n() as V {
                prop_assert_eq!(dmx.get(u, v), dm.get(u, v).div_ceil(x));
            }
        }
    }

    #[test]
    fn components_agree_with_bfs_reachability(g in arbitrary_graph(14)) {
        let (labels, _count) = bncg::graph::components::connected_components(&g);
        let csr = g.to_csr();
        for u in 0..g.n() as V {
            let dist = bncg::graph::bfs_distances(&csr, u);
            for v in 0..g.n() as V {
                let reachable = dist[v as usize] != bncg::graph::UNREACHABLE;
                prop_assert_eq!(
                    labels[u as usize] == labels[v as usize],
                    reachable,
                    "component labels must match BFS reachability"
                );
            }
        }
    }

    #[test]
    fn swap_undo_roundtrip(g in arbitrary_graph(12), pick in any::<u64>()) {
        let edges = g.edge_vec();
        prop_assume!(!edges.is_empty());
        let e = edges[(pick as usize) % edges.len()];
        let w2 = (pick % g.n() as u64) as V;
        prop_assume!(w2 != e.u);
        let mut h = g.clone();
        let rec = h.apply_swap(e.u, e.v, w2);
        h.undo_swap(rec);
        prop_assert_eq!(h, g);
    }
}
