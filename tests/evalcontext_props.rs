//! Property tests pinning the pooled/parallel evaluation paths to the
//! naive per-call path.
//!
//! The `EvalContext` refactor replaced per-agent CSR snapshots and fresh
//! BFS scratch with pooled, reusable buffers, and made the equilibrium
//! audits parallel. None of that is allowed to change a single bit of any
//! result: these properties compare every context path against a literal
//! reimplementation of the seed's per-call code (rebuild the CSR, allocate
//! scratch, scan) on Erdős–Rényi graphs and uniform random trees with
//! n ≤ 64, under both objectives.

use bncg::game::context::EvalContext;
use bncg::game::equilibrium::{MaxGame, SumGame};
use bncg::game::evaluator::EdgeSwapScan;
use bncg::game::objective::{MaxObjective, Objective, SumObjective};
use bncg::graph::generators::random::{gnp, random_tree};
use bncg::graph::{BfsScratch, Graph, V};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Sparse Erdős–Rényi graph on up to `max_n` vertices (edge probability
/// scaled as ~3/n so audits stay fast in debug builds; connectivity is not
/// required — the evaluator must handle disconnected graphs).
fn er_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (4usize..=max_n, any::<u64>()).prop_map(|(n, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = (3.0 / n as f64).min(0.9);
        gnp(&mut rng, n, p)
    })
}

/// Uniform random labeled tree on up to `max_n` vertices.
fn tree(max_n: usize) -> impl Strategy<Value = Graph> {
    (4usize..=max_n, any::<u64>()).prop_map(|(n, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        random_tree(&mut rng, n)
    })
}

/// The seed's per-call best response, verbatim: fresh CSR snapshot, fresh
/// scratch, one scan per incident edge, nothing pooled.
fn naive_best_response<O: Objective>(g: &Graph, v: V) -> Option<bncg::game::ScoredSwap> {
    let csr = g.to_csr();
    let old = {
        let mut scratch = BfsScratch::new(g.n());
        scratch.run(&csr, v);
        O::cost_of_wide_row(&scratch.dist)
    };
    let mut best: Option<bncg::game::ScoredSwap> = None;
    for &w in g.neighbors(v) {
        let scan = EdgeSwapScan::new(&csr, v, w);
        if let Some(s) = scan.best_improving::<O>(v, old) {
            if best.as_ref().is_none_or(|b| s.new_cost < b.new_cost) {
                best = Some(s);
            }
        }
    }
    best
}

/// The seed's witness search, verbatim: fresh CSR + base APSP, sequential
/// edge scan, first improving swap wins.
fn naive_find_improving_swap<O: Objective>(g: &Graph) -> Option<bncg::game::ScoredSwap> {
    let csr = g.to_csr();
    let base = bncg::graph::DistanceMatrix::build(&csr);
    for e in g.edge_vec() {
        let scan = EdgeSwapScan::new(&csr, e.u, e.v);
        for agent in [e.u, e.v] {
            let old = O::cost_of_row(base.row(agent));
            if let Some(s) = scan.best_improving::<O>(agent, old) {
                return Some(s);
            }
        }
    }
    None
}

fn assert_all_paths_agree<O: Objective>(g: &Graph) {
    let ctx = EvalContext::new(g);
    // Per-agent best responses: pooled == naive, byte for byte.
    for v in 0..g.n() as V {
        assert_eq!(
            ctx.best_response::<O>(v),
            naive_best_response::<O>(g, v),
            "best response diverged for agent {v} under {}",
            O::NAME
        );
    }
    // Whole-graph witness: sequential pooled == parallel == naive.
    let naive = naive_find_improving_swap::<O>(g);
    assert_eq!(ctx.find_improving_swap::<O>(), naive, "{} seq", O::NAME);
    assert_eq!(ctx.find_improving_swap_par::<O>(), naive, "{} par", O::NAME);
    // Agent costs off the pooled scratch match the one-shot path.
    for v in 0..g.n() as V {
        assert_eq!(
            ctx.agent_cost::<O>(v),
            bncg::game::evaluator::agent_cost::<O>(g, v),
            "agent cost diverged for {v} under {}",
            O::NAME
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn er_graphs_sum_paths_agree(g in er_graph(64)) {
        assert_all_paths_agree::<SumObjective>(&g);
    }

    #[test]
    fn er_graphs_max_paths_agree(g in er_graph(64)) {
        assert_all_paths_agree::<MaxObjective>(&g);
    }

    #[test]
    fn random_trees_sum_paths_agree(t in tree(64)) {
        assert_all_paths_agree::<SumObjective>(&t);
    }

    #[test]
    fn random_trees_max_paths_agree(t in tree(64)) {
        assert_all_paths_agree::<MaxObjective>(&t);
    }

    #[test]
    fn exhaustive_audits_agree(g in er_graph(24)) {
        // all_improving_swaps must list the same witnesses in the same
        // order as the naive nested loop.
        let ctx = EvalContext::new(&g);
        let csr = g.to_csr();
        let base = bncg::graph::DistanceMatrix::build(&csr);
        let mut naive = Vec::new();
        for e in g.edge_vec() {
            let scan = EdgeSwapScan::new(&csr, e.u, e.v);
            for agent in [e.u, e.v] {
                let old = SumObjective::cost_of_row(base.row(agent));
                naive.extend(scan.all_improving::<SumObjective>(agent, old));
            }
        }
        prop_assert_eq!(ctx.all_improving_swaps::<SumObjective>(), naive);
    }

    #[test]
    fn analyze_reports_match_naive_witness(g in er_graph(32)) {
        let sum = SumGame::analyze(&g);
        prop_assert_eq!(sum.witness, naive_find_improving_swap::<SumObjective>(&g));
        let max = MaxGame::analyze(&g);
        prop_assert_eq!(max.witness, naive_find_improving_swap::<MaxObjective>(&g));
        prop_assert_eq!(sum.n, g.n());
        prop_assert_eq!(sum.m, g.m());
    }

    #[test]
    fn context_refresh_equals_fresh_context(t in tree(32), seed in any::<u64>()) {
        // Drive a few dynamics moves, refreshing one long-lived context,
        // and compare against a fresh context at every step.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = t;
        let mut ctx = EvalContext::new(&g);
        for _ in 0..6 {
            let v = rand::Rng::gen_range(&mut rng, 0..g.n()) as V;
            let pooled = ctx.best_response::<SumObjective>(v);
            let fresh = EvalContext::new(&g).best_response::<SumObjective>(v);
            prop_assert_eq!(&pooled, &fresh);
            if let Some(s) = pooled {
                s.mv.apply(&mut g);
                ctx.refresh(&g);
            }
        }
    }
}
