//! Property tests pinning the maintained per-vertex cost aggregates to
//! fresh recomputation.
//!
//! `DynamicApsp` keeps each source row's sum and eccentricity alongside
//! the matrix, refreshed only for the rows a repair or blend actually
//! rewrites. None of that bookkeeping is allowed to drift: after **every**
//! random swap step (and every batched round), each vertex's maintained
//! cost must equal a fresh `cost_of_row` over the maintained row *and* a
//! fresh BFS-based `agent_cost` on the mutated graph — under both
//! objectives, on ER graphs and trees, at both fallback-threshold
//! extremes (`n` = never rebuild, `0` = always rebuild). A deterministic
//! long-run keeps the total step count ≥ 500 regardless of proptest case
//! budgets.

use bncg::game::context::EvalContext;
use bncg::game::objective::{MaxObjective, Objective, SumObjective};
use bncg::graph::dynamic::DynamicApsp;
use bncg::graph::generators::random::{gnp, random_tree};
use bncg::graph::{Graph, V};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Sparse ER graph on up to `max_n` vertices (connectivity not required —
/// the aggregates must track unreachable rows exactly, as `u64::MAX`).
fn er_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (6usize..=max_n, any::<u64>()).prop_map(|(n, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = (3.0 / n as f64).min(0.9);
        gnp(&mut rng, n, p)
    })
}

/// Uniform random labeled tree on up to `max_n` vertices.
fn tree(max_n: usize) -> impl Strategy<Value = Graph> {
    (6usize..=max_n, any::<u64>()).prop_map(|(n, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        random_tree(&mut rng, n)
    })
}

/// Random legal swap `(v, w, w2)` of `g` (deletions and no-ops included).
fn random_swap<R: Rng>(rng: &mut R, g: &Graph) -> Option<(V, V, V)> {
    if g.m() == 0 {
        return None;
    }
    let edges = g.edge_vec();
    let e = edges[rng.gen_range(0..edges.len())];
    let (v, w) = if rng.gen_bool(0.5) {
        (e.u, e.v)
    } else {
        (e.v, e.u)
    };
    let n = g.n() as V;
    let mut w2 = rng.gen_range(0..n);
    if w2 == v {
        w2 = if w2 + 1 < n { w2 + 1 } else { 0 };
    }
    if w2 == v {
        return None;
    }
    Some((v, w, w2))
}

/// Asserts every vertex's maintained aggregate equals a fresh row scan of
/// the maintained matrix *and* a fresh BFS recomputation on `g`.
fn assert_aggregates_exact(da: &DynamicApsp, g: &Graph, context: &str) {
    for v in 0..g.n() as V {
        let row = da.matrix().row(v);
        assert_eq!(
            SumObjective::maintained_cost(da, v),
            SumObjective::cost_of_row(row),
            "sum aggregate diverged from row scan at v={v} ({context})"
        );
        assert_eq!(
            MaxObjective::maintained_cost(da, v),
            MaxObjective::cost_of_row(row),
            "ecc aggregate diverged from row scan at v={v} ({context})"
        );
        let fresh_sum = bncg::game::evaluator::agent_cost::<SumObjective>(g, v);
        let fresh_ecc = bncg::game::evaluator::agent_cost::<MaxObjective>(g, v);
        assert_eq!(
            SumObjective::maintained_cost(da, v),
            fresh_sum,
            "sum aggregate diverged from fresh agent_cost at v={v} ({context})"
        );
        assert_eq!(
            MaxObjective::maintained_cost(da, v),
            fresh_ecc,
            "ecc aggregate diverged from fresh agent_cost at v={v} ({context})"
        );
    }
}

/// Replays `steps` random swaps, checking the aggregates after every step.
/// Returns the number of steps applied.
fn replay_and_check(mut g: Graph, seed: u64, steps: usize, max_repair_rows: usize) -> usize {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut da = DynamicApsp::build(&g.to_csr());
    da.set_max_repair_rows(max_repair_rows);
    assert_aggregates_exact(&da, &g, "initial build");
    let mut applied = 0;
    for step in 0..steps {
        let Some((v, w, w2)) = random_swap(&mut rng, &g) else {
            break;
        };
        let rec = g.apply_swap(v, w, w2);
        da.apply_swap(&g.to_csr(), &rec);
        assert_aggregates_exact(&da, &g, &format!("step {step} swap {v}-{w}->{w2}"));
        applied += 1;
    }
    applied
}

/// Replays whole rounds of edge-disjoint swaps through `apply_batch`,
/// checking the aggregates at every round barrier.
fn replay_rounds_and_check(mut g: Graph, seed: u64, rounds: usize, k: usize) -> usize {
    use bncg::graph::adjacency::{Edge, SwapApplied};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut da = DynamicApsp::build(&g.to_csr());
    let mut total = 0;
    for round in 0..rounds {
        let mut touched: Vec<Edge> = Vec::new();
        let mut batch: Vec<SwapApplied> = Vec::new();
        for _ in 0..8 * k {
            if batch.len() == k {
                break;
            }
            let Some((v, w, w2)) = random_swap(&mut rng, &g) else {
                break;
            };
            if w2 == w || g.has_edge(v, w2) {
                continue; // proper swaps only: footprints stay disjoint
            }
            let fp = [Edge::new(v, w), Edge::new(v, w2)];
            if fp.iter().any(|e| touched.contains(e)) {
                continue;
            }
            touched.extend_from_slice(&fp);
            batch.push(g.apply_swap(v, w, w2));
        }
        da.apply_batch(&g.to_csr(), &batch);
        total += batch.len();
        assert_aggregates_exact(&da, &g, &format!("round {round}"));
    }
    total
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// ER graphs, repair path (threshold n: never rebuild).
    #[test]
    fn aggregates_track_er_swaps_repair_path(g in er_graph(24), seed in any::<u64>()) {
        let n = g.n();
        replay_and_check(g, seed, 12, n);
    }

    /// ER graphs, rebuild path (threshold 0: every effective deletion
    /// falls back to a full rebuild + full aggregate refresh).
    #[test]
    fn aggregates_track_er_swaps_rebuild_path(g in er_graph(20), seed in any::<u64>()) {
        replay_and_check(g, seed, 10, 0);
    }

    /// Trees: bridge deletions invalidate whole subtrees (and disconnect
    /// transiently), the worst case for aggregate bookkeeping.
    #[test]
    fn aggregates_track_tree_swaps(g in tree(20), seed in any::<u64>()) {
        let n = g.n();
        replay_and_check(g, seed, 12, n);
    }

    /// Batched rounds: the fused multi-insertion blend must leave the
    /// aggregates exactly where k sequential blends would.
    #[test]
    fn aggregates_track_batched_rounds(g in er_graph(20), seed in any::<u64>()) {
        replay_rounds_and_check(g, seed, 4, 4);
    }
}

/// Deterministic long-run: ≥ 500 checked swap steps across both families
/// and both threshold extremes, independent of proptest case budgets.
#[test]
fn aggregates_long_run_500_steps() {
    let mut total = 0;
    let mut seed = 0xA66u64;
    while total < 500 {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 10 + (seed % 14) as usize;
        let er = gnp(&mut rng, n, (3.0 / n as f64).min(0.9));
        let tr = random_tree(&mut rng, n);
        // Alternate threshold extremes between iterations.
        let threshold = if total % 2 == 0 { n } else { 0 };
        total += replay_and_check(er, seed ^ 1, 16, threshold);
        total += replay_and_check(tr, seed ^ 2, 16, threshold);
        total += replay_rounds_and_check(gnp(&mut rng, n, 0.3), seed ^ 3, 3, 4);
    }
    assert!(total >= 500, "long-run applied only {total} steps");
}

/// The context-level read path: `EvalContext::agent_cost` and `cost_range`
/// read the maintained aggregates once a base is cached — they must agree
/// with fresh per-call contexts across a trajectory of best responses.
#[test]
fn context_reads_match_fresh_context_across_trajectory() {
    let mut g = bncg::graph::generators::classic::path(12);
    let mut ctx = EvalContext::new(&g);
    ctx.base(); // force the maintained matrix + aggregates
    for _ in 0..20 {
        let Some(s) = (0..12).find_map(|v| ctx.best_response::<SumObjective>(v)) else {
            break;
        };
        let rec = s.mv.apply(&mut g);
        ctx.refresh_after(&g, &rec);
        let fresh = EvalContext::new(&g);
        for v in 0..12 as V {
            assert_eq!(
                ctx.agent_cost::<SumObjective>(v),
                fresh.agent_cost::<SumObjective>(v),
                "sum agent_cost diverged at v={v}"
            );
            assert_eq!(
                ctx.agent_cost::<MaxObjective>(v),
                fresh.agent_cost::<MaxObjective>(v),
                "max agent_cost diverged at v={v}"
            );
        }
        assert_eq!(
            ctx.cost_range::<SumObjective>(),
            fresh.cost_range::<SumObjective>()
        );
        assert_eq!(
            ctx.cost_range::<MaxObjective>(),
            fresh.cost_range::<MaxObjective>()
        );
    }
}
