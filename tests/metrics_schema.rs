//! Schema check for the streaming round-metrics pipeline (acceptance
//! criterion of the telemetry PR): a traced round-based run streamed
//! through [`JsonlSink`] must emit exactly one JSON Lines record per
//! dynamics round, every line must parse back into a [`RoundRecord`]
//! (and re-serialize byte-exact, pinning the documented schema), and —
//! when the `telemetry` feature is compiled in — every round that
//! repaired rows must carry non-zero per-phase repair timings.

use bncg::dynamics::{run_traced_rounds_with_sink, JsonlSink, Response, RoundRecord};
use bncg::game::objective::SumObjective;
use bncg::graph::generators::random::random_connected;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn traced_rounds_emit_one_parseable_jsonl_record_per_round() {
    let n = 24;
    let mut rng = StdRng::seed_from_u64(0x5CE4);
    let start = random_connected(&mut rng, n, n / 4);

    let mut sink = JsonlSink::new(Vec::new());
    let trajectory =
        run_traced_rounds_with_sink::<SumObjective>(&start, Response::Best, 64, &mut sink);
    assert!(sink.error().is_none(), "in-memory writes cannot fail");
    let text = String::from_utf8(sink.into_inner()).expect("JSONL output is UTF-8");

    // One record per traced round.
    let lines: Vec<&str> = text.lines().collect();
    assert!(!lines.is_empty(), "the run must emit at least one round");
    assert_eq!(lines.len(), trajectory.points.len());

    let mut total_applied = 0;
    for (i, line) in lines.iter().enumerate() {
        let parsed = RoundRecord::from_jsonl(line)
            .unwrap_or_else(|e| panic!("line {i} does not parse: {e}\n{line}"));
        // The serializer is the schema: re-emitting the parsed record must
        // reproduce the line byte-exact (field order, nulls and all).
        assert_eq!(*line, parsed.to_jsonl(), "line {i} round-trips");
        assert_eq!(parsed.round, i + 1, "rounds are 1-based and consecutive");
        assert!(parsed.applied <= parsed.proposed);
        assert_eq!(parsed.conflicted, parsed.proposed - parsed.applied);
        total_applied += parsed.applied;
        // The acceptance criterion: per-phase repair timings per round.
        if bncg::telemetry::enabled() && parsed.repair.rows_repaired > 0 {
            assert!(
                parsed.phases.phase1_ns > 0,
                "round {} repaired {} rows but reports no phase-1 time",
                parsed.round,
                parsed.repair.rows_repaired
            );
        }
    }
    // The stream reconciles with the trajectory it narrates.
    assert_eq!(total_applied, trajectory.total_moves());
    let last = RoundRecord::from_jsonl(lines.last().expect("non-empty")).expect("parses");
    assert_eq!(last.converged, trajectory.converged);
    if trajectory.converged {
        assert_eq!(last.proposed, 0, "a converged final round proposed nothing");
    }
}
