//! Crash-recovery property sweep: kill a journaled round service at
//! every round boundary and prove resume is byte-identical.
//!
//! The journal is a write-ahead log — every accepted batch is fsync'd
//! *before* it is applied to the maintained matrix — so any prefix of
//! whole records is a legal crash state. This suite runs a journaled
//! session to completion, then for **every** line-prefix of the journal
//! resumes a fresh service from the cut file and runs it to completion,
//! asserting the final graph, the outcome, and the continuation's
//! [`RoundRecord`] stream are identical to the uninterrupted run (modulo
//! the wall-clock phase timings, which are never byte-stable). Torn
//! tails (a crash mid-`write`) must be truncated, interior corruption
//! must be refused, and resume must restart from the last checkpoint
//! when one exists.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use bncg::dynamics::engine::Response;
use bncg::dynamics::rounds::{RoundConfig, RoundDynamics};
use bncg::dynamics::service::{JournalOptions, RoundService, ServiceConfig};
use bncg::dynamics::sink::{MemorySink, RoundRecord};
use bncg::dynamics::RecoveryError;
use bncg::game::objective::{MaxObjective, Objective, SumObjective};
use bncg::game::rules::GameRules;
use bncg::game::swap::SwapMove;
use bncg::graph::generators::random::{gnp, random_tree};
use bncg::graph::Graph;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn temp_path(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let id = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "bncg-recovery-{}-{tag}-{id}.wal",
        std::process::id()
    ))
}

/// Asserts two record streams are identical modulo the phase timings
/// (wall-clock, process-global — never byte-stable) and the `last_*`
/// repair gauges. The gauges describe the maintained matrix's *most
/// recent* repair — a context rebuilt at resume (full build, or from a
/// checkpoint) legitimately reports none where the uninterrupted run
/// still shows its last batch. Every per-round counter stays strict.
fn assert_records_match(continued: &[RoundRecord], reference: &[RoundRecord], context: &str) {
    assert_eq!(
        continued.len(),
        reference.len(),
        "continuation record counts diverged ({context})"
    );
    for (c, r) in continued.iter().zip(reference) {
        let mut r = *r;
        r.phases = c.phases;
        r.repair.last_repair_candidates = c.repair.last_repair_candidates;
        r.repair.last_rows_repaired = c.repair.last_rows_repaired;
        r.repair.last_rows_blended = c.repair.last_rows_blended;
        r.repair.last_batch_swaps = c.repair.last_batch_swaps;
        r.repair.last_was_rebuild = c.repair.last_was_rebuild;
        assert_eq!(*c, r, "record diverged at round {} ({context})", c.round);
    }
}

/// Runs one journaled session to completion, then kills it at **every**
/// journal line prefix and resumes: every cut must reconstruct the live
/// state byte-identically and finish exactly like the uninterrupted run.
/// Returns the number of distinct crash states verified.
fn sweep_kills<O: Objective + GameRules + Default>(
    start: &Graph,
    config: RoundConfig,
    ckpt_every: usize,
    label: &str,
) -> usize {
    let path = temp_path("full");
    let service_config = ServiceConfig {
        rounds: config,
        pipelined: false,
    };
    let mut service = RoundService::<O>::new(start, service_config);
    service
        .attach_journal(
            &path,
            JournalOptions {
                checkpoint_every: ckpt_every,
            },
        )
        .expect("journal in temp dir");
    let mut sink = MemorySink::new();
    let full = service.run_session(&mut sink).result;
    assert!(service.journal_error().is_none(), "journal stayed healthy");
    let rounds_total = service.rounds_total();
    drop(service);

    let text = fs::read_to_string(&path).expect("read journal");
    let lines: Vec<&str> = text.lines().collect();
    let mut verified = 0usize;
    let mut checkpoint_used = false;
    // lines[0] is the seed; the last line is the SessionEnd. Every prefix
    // in between — seed only, seed+start, each round, each checkpoint —
    // is a crash the WAL discipline promises to recover from.
    for cut in 1..lines.len() {
        let partial = temp_path("cut");
        fs::write(&partial, lines[..cut].join("\n") + "\n").expect("write prefix");
        let (mut resumed, report) = RoundService::<O>::resume(&partial).unwrap_or_else(|e| {
            panic!("resume failed at cut {cut} ({label}): {e}");
        });
        checkpoint_used |= report.used_checkpoint;
        // Rounds already safely on disk before the kill; the continuation
        // must replay exactly the missing suffix.
        let k = report.midsession.unwrap_or(0);
        assert_eq!(report.rounds_replayed, k, "cut {cut} ({label})");
        let mut continuation = MemorySink::new();
        let cont = resumed.run_session(&mut continuation).result;
        assert_eq!(cont.graph, full.graph, "final graph, cut {cut} ({label})");
        assert_eq!(cont.outcome, full.outcome, "outcome, cut {cut} ({label})");
        assert_eq!(
            resumed.rounds_total(),
            rounds_total,
            "aggregate rounds, cut {cut} ({label})"
        );
        assert_records_match(
            &continuation.records,
            &sink.records[k..],
            &format!("cut {cut} ({label})"),
        );
        fs::remove_file(&partial).ok();
        verified += 1;
    }
    if ckpt_every > 0 && lines.iter().any(|l| l.contains("\"k\":\"ckpt\"")) {
        assert!(
            checkpoint_used,
            "some cut must resume from the checkpoint ({label})"
        );
    }
    fs::remove_file(&path).ok();
    verified
}

#[test]
fn kill_at_every_round_boundary_resumes_byte_identically() {
    let mut rng = StdRng::seed_from_u64(0x0DEA_D0A1);
    let bounded = RoundConfig {
        max_rounds: 12,
        detect_cycles: false,
        ..RoundConfig::default()
    };
    let mut verified = 0usize;
    for i in 0..3 {
        let er = gnp(&mut rng, 18 + 2 * i, 0.16);
        verified += sweep_kills::<SumObjective>(&er, RoundConfig::default(), 0, "er/sum");
        verified += sweep_kills::<MaxObjective>(&er, bounded, 0, "er/max bounded");
        let t = random_tree(&mut rng, 16 + 2 * i);
        verified += sweep_kills::<SumObjective>(&t, bounded, 3, "tree/sum ckpt");
        verified += sweep_kills::<MaxObjective>(&t, RoundConfig::default(), 2, "tree/max ckpt");
    }
    assert!(
        verified >= 60,
        "crash-state volume floor not met: only {verified} prefixes verified"
    );
}

#[test]
fn resume_of_a_completed_journal_behaves_like_the_original_service() {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    let start = gnp(&mut rng, 20, 0.15);
    let path = temp_path("done");
    let mut service = RoundService::<SumObjective>::new(&start, ServiceConfig::default());
    service
        .attach_journal(&path, JournalOptions::default())
        .expect("journal");
    let first = service.run_session_plain();
    let rounds_total = service.rounds_total();
    drop(service);

    let (mut resumed, report) =
        RoundService::<SumObjective>::resume(&path).expect("resume complete journal");
    assert!(report.midsession.is_none(), "the session was closed");
    assert!(!report.truncated_tail);
    assert_eq!(resumed.graph(), &first.result.graph);
    assert_eq!(resumed.rounds_total(), rounds_total);
    // A fresh session from the recovered converged state must terminate
    // immediately, exactly like the original service would have.
    let second = resumed.run_session_plain();
    assert_eq!(second.result.graph, first.result.graph);
    assert_eq!(second.result.moves_applied, 0);
    fs::remove_file(&path).ok();
}

#[test]
fn a_torn_tail_is_truncated_and_resume_succeeds() {
    let mut rng = StdRng::seed_from_u64(0x70B1);
    let start = random_tree(&mut rng, 18);
    let path = temp_path("torn");
    let mut service = RoundService::<SumObjective>::new(&start, ServiceConfig::default());
    service
        .attach_journal(&path, JournalOptions::default())
        .expect("journal");
    let full = service.run_session_plain().result;
    drop(service);

    // A crash mid-`write` leaves a partial record on the last line; the
    // scanner must drop exactly that line and resume from the rest.
    let clean = fs::read_to_string(&path).expect("read journal");
    let torn = temp_path("torn-cut");
    let lines: Vec<&str> = clean.lines().collect();
    let keep = lines.len() - 2; // drop SessionEnd and the last round...
    let mut text = lines[..keep].join("\n") + "\n";
    text.push_str("{\"crc\":\"deadbeef\",\"rec\":{\"k\":\"round\",\"ro"); // ...then tear one
    fs::write(&torn, &text).expect("write torn journal");

    let (mut resumed, report) =
        RoundService::<SumObjective>::resume(&torn).expect("resume torn journal");
    assert!(report.truncated_tail, "the torn record must be dropped");
    let on_disk = fs::read_to_string(&torn).expect("reread");
    assert!(
        on_disk.ends_with('\n') && on_disk.lines().count() == keep,
        "the torn line must be physically truncated"
    );
    let cont = resumed.run_session_plain().result;
    assert_eq!(
        cont.graph, full.graph,
        "recovery converges to the same state"
    );
    fs::remove_file(&path).ok();
    fs::remove_file(&torn).ok();
}

#[test]
fn interior_corruption_is_refused_not_papered_over() {
    let mut rng = StdRng::seed_from_u64(0xBAD);
    let start = gnp(&mut rng, 16, 0.2);
    let path = temp_path("corrupt");
    let mut service = RoundService::<SumObjective>::new(&start, ServiceConfig::default());
    service
        .attach_journal(&path, JournalOptions::default())
        .expect("journal");
    let _ = service.run_session_plain();
    drop(service);

    let clean = fs::read_to_string(&path).expect("read journal");
    let mut lines: Vec<String> = clean.lines().map(str::to_owned).collect();
    assert!(lines.len() >= 3, "need an interior record to corrupt");
    let mid = lines.len() / 2;
    lines[mid] = lines[mid].replace(['0', '1'], "7"); // flip digits, keep shape
    let bad = temp_path("corrupt-cut");
    fs::write(&bad, lines.join("\n") + "\n").expect("write corrupt journal");
    match RoundService::<SumObjective>::resume(&bad) {
        Err(RecoveryError::Corrupt { line, .. }) => assert_eq!(line, mid + 1),
        Err(other) => panic!("expected Corrupt, got {other}"),
        Ok(_) => panic!("interior corruption must be refused"),
    }
    fs::remove_file(&path).ok();
    fs::remove_file(&bad).ok();
}

#[test]
fn perturbations_are_journaled_and_replayed() {
    let mut rng = StdRng::seed_from_u64(0x9E27);
    let start = random_tree(&mut rng, 20);
    let path = temp_path("perturb");
    let mut service = RoundService::<SumObjective>::new(&start, ServiceConfig::default());
    service
        .attach_journal(&path, JournalOptions::default())
        .expect("journal");
    let _ = service.run_session_plain();
    // Swap one existing edge onto a currently non-adjacent endpoint, then
    // settle again — both the perturbation and the second session land in
    // the journal.
    let g = service.graph().clone();
    let edge = *g.edge_vec().first().expect("non-empty graph");
    let (v, w) = (edge.u, edge.v);
    let w2 = (0..g.n() as bncg::graph::V)
        .find(|&x| x != v && x != w && !g.has_edge(v, x))
        .expect("a non-neighbor exists");
    assert_eq!(service.perturb(&[SwapMove { v, w, w2 }]), 1);
    let _ = service.run_session_plain();
    let final_graph = service.graph().clone();
    let rounds_total = service.rounds_total();
    let sessions_run = service.sessions_run();
    drop(service);

    let (resumed, report) =
        RoundService::<SumObjective>::resume(&path).expect("resume perturbed journal");
    assert!(report.midsession.is_none());
    assert_eq!(resumed.graph(), &final_graph);
    assert_eq!(resumed.rounds_total(), rounds_total);
    assert_eq!(resumed.sessions_run(), sessions_run);
    fs::remove_file(&path).ok();
}

#[test]
fn resumed_midsession_records_match_a_fresh_engine_suffix() {
    // The continuation must not only match the journaled service's own
    // records — it must match what the *serial reference engine* emits
    // from the recovered state, closing the loop against the engine the
    // byte-identity suite pins the service to.
    let mut rng = StdRng::seed_from_u64(0x5EED);
    let start = gnp(&mut rng, 22, 0.14);
    let path = temp_path("xcheck");
    let mut service = RoundService::<SumObjective>::new(&start, ServiceConfig::default());
    service
        .attach_journal(&path, JournalOptions::default())
        .expect("journal");
    let full = service.run_session_plain().result;
    drop(service);

    let text = fs::read_to_string(&path).expect("read journal");
    let lines: Vec<&str> = text.lines().collect();
    if lines.len() < 4 {
        return; // converged without enough rounds to cut mid-session
    }
    let cut = lines.len() / 2;
    let partial = temp_path("xcheck-cut");
    fs::write(&partial, lines[..cut].join("\n") + "\n").expect("write prefix");
    let (mut resumed, _) = RoundService::<SumObjective>::resume(&partial).expect("resume");
    let recovered = resumed.graph().clone();
    let fresh = RoundDynamics::<SumObjective>::new(RoundConfig {
        response: Response::Best,
        ..RoundConfig::default()
    })
    .run(&recovered);
    let cont = resumed.run_session_plain().result;
    assert_eq!(cont.graph, fresh.graph);
    assert_eq!(cont.graph, full.graph);
    assert_eq!(cont.outcome, fresh.outcome);
    fs::remove_file(&path).ok();
    fs::remove_file(&partial).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn random_starts_survive_kills_at_every_boundary(
        n in 12usize..=22,
        seed in any::<u64>(),
        sum in any::<bool>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = gnp(&mut rng, n, 0.15);
        let config = RoundConfig { max_rounds: 10, detect_cycles: false, ..RoundConfig::default() };
        if sum {
            sweep_kills::<SumObjective>(&g, config, 4, "proptest/sum");
        } else {
            sweep_kills::<MaxObjective>(&g, config, 0, "proptest/max");
        }
    }
}
