//! Integration tests: every theorem of the paper re-proved in miniature.
//!
//! These are the executable statements of the reproduction — each test is
//! one claim from the paper (or the documented erratum/repair), exercised
//! across crates exactly the way the full experiments do at scale.

use bncg::constructions::fig3::{fig3_graph, repaired_fig3};
use bncg::constructions::torus::{multi_torus, rotated_torus, standard_torus, RotatedTorus};
use bncg::dynamics::census::tree_census;
use bncg::game::lemmas::{
    corollary11_audit, lemma10_search, lemma2_holds, lemma3_holds, theorem9_ball_growth,
    Lemma10Outcome,
};
use bncg::game::stability::{
    is_deletion_critical, is_insertion_stable, min_insertions_to_shrink_ecc,
};
use bncg::game::{MaxGame, SumGame};
use bncg::graph::generators::classic;
use bncg::graph::{DistanceMatrix, V};

#[test]
fn theorem1_sum_equilibrium_trees_are_stars() {
    for n in 4..=10 {
        let census = tree_census(n);
        assert!(census.theorem1_holds(), "Theorem 1 fails at n={n}");
        assert_eq!(
            census.sum_equilibrium_diameters,
            vec![2],
            "exactly the star at n={n}"
        );
    }
}

#[test]
fn theorem4_max_equilibrium_trees_have_diameter_at_most_3() {
    for n in 4..=10 {
        let census = tree_census(n);
        assert!(census.theorem4_holds(), "Theorem 4 fails at n={n}");
    }
}

#[test]
fn figure2_double_star_boundary() {
    for p in 1..=4 {
        for q in 1..=4 {
            let expected = p >= 2 && q >= 2;
            assert_eq!(
                MaxGame::is_equilibrium(&classic::double_star(p, q)),
                expected,
                "D({p},{q})"
            );
        }
    }
}

#[test]
fn theorem5_erratum_and_repair() {
    // Erratum: the printed Figure 3 admits an improving swap.
    assert!(!SumGame::is_equilibrium(&fig3_graph()));
    // Repair: the 4-branch variant is a genuine diameter-3 sum equilibrium.
    let r = repaired_fig3();
    assert!(SumGame::is_equilibrium(&r));
    let dm = DistanceMatrix::build(&r.to_csr());
    assert_eq!(dm.diameter(), Some(3));
}

#[test]
fn lemma2_spread_in_max_equilibria() {
    for g in [
        classic::star(9),
        classic::double_star(3, 5),
        classic::complete(6),
        rotated_torus(3),
        multi_torus(3, 2),
    ] {
        assert!(MaxGame::is_equilibrium(&g), "precondition: max equilibrium");
        let dm = DistanceMatrix::build(&g.to_csr());
        assert!(lemma2_holds(&dm), "Lemma 2 must hold in max equilibrium");
        assert!(lemma3_holds(&g), "Lemma 3 must hold in max equilibrium");
    }
}

#[test]
fn theorem9_ball_growth_inequality_on_equilibria() {
    for g in [classic::star(64), repaired_fig3(), classic::complete(16)] {
        assert!(SumGame::is_equilibrium(&g));
        let dm = DistanceMatrix::build(&g.to_csr());
        for k in 1..=2 {
            assert!(
                theorem9_ball_growth(&dm, k).holds(),
                "inequality (1) must hold at k={k}"
            );
        }
    }
}

#[test]
fn corollary11_gain_bound_on_equilibria() {
    for g in [classic::star(64), repaired_fig3(), classic::cycle(5)] {
        assert!(SumGame::is_equilibrium(&g));
        let dm = DistanceMatrix::build(&g.to_csr());
        assert!(corollary11_audit(&dm).holds());
    }
}

#[test]
fn lemma10_never_violated_on_equilibria() {
    for g in [classic::star(32), repaired_fig3(), classic::complete(8)] {
        assert!(SumGame::is_equilibrium(&g));
        let dm = DistanceMatrix::build(&g.to_csr());
        for u in 0..g.n().min(4) as V {
            assert!(
                !matches!(lemma10_search(&g, &dm, u), Lemma10Outcome::Violation),
                "Lemma 10 violated from u={u}"
            );
        }
    }
}

#[test]
fn theorem12_rotated_torus_is_max_equilibrium_with_diameter_k() {
    for k in [2usize, 3, 4] {
        let g = rotated_torus(k);
        assert_eq!(g.n(), 2 * k * k);
        assert!(is_deletion_critical(&g), "k={k}");
        assert!(is_insertion_stable(&g), "k={k}");
        assert!(MaxGame::is_equilibrium(&g), "k={k}");
        let dm = DistanceMatrix::build(&g.to_csr());
        assert_eq!(dm.diameter(), Some(k as u32), "diameter must equal k");
    }
}

#[test]
fn theorem12_closed_form_metric() {
    let k = 5;
    let torus = RotatedTorus::new(k);
    let dm = DistanceMatrix::build(&rotated_torus(k).to_csr());
    for u in 0..(2 * k * k) as V {
        for w in 0..(2 * k * k) as V {
            assert_eq!(dm.get(u, w) as usize, torus.distance(u, w));
        }
    }
}

#[test]
fn theorem12_standard_torus_is_not_an_equilibrium() {
    assert!(!MaxGame::is_equilibrium(&standard_torus(6, 6)));
    assert!(!MaxGame::is_equilibrium(&standard_torus(5, 5)));
}

#[test]
fn section4_multidim_torus_diameter_and_stability_ladder() {
    for (d, k) in [(2usize, 4usize), (3, 2), (3, 3)] {
        let g = multi_torus(d, k);
        assert_eq!(g.n(), 2 * k.pow(d as u32));
        let dm = DistanceMatrix::build(&g.to_csr());
        assert_eq!(dm.diameter(), Some(k as u32), "diameter = k at d={d}");
        assert!(is_deletion_critical(&g), "(d,k)=({d},{k})");
        // Stable under d-1 insertions at a vertex (vertex-transitive).
        let min_ins = min_insertions_to_shrink_ecc(&dm, 0, d + 1);
        assert!(
            min_ins.is_none_or(|m| m >= d),
            "(d,k)=({d},{k}): shrinking needs >= d insertions, got {min_ins:?}"
        );
        // The paper's stronger claim — stability under d-1 SWAPS — checked
        // exactly by the set-cover-based audit.
        assert!(
            bncg::game::kswap::k_swap_audit(&g, 0, d - 1).is_stable(),
            "(d,k)=({d},{k}): must be stable under d-1 swaps"
        );
    }
}

#[test]
fn known_equilibrium_catalog_is_classified_correctly() {
    // The classified corpus used throughout the experiments.
    let sum_equilibria = [
        classic::star(9),
        classic::complete(7),
        classic::cycle(4),
        classic::cycle(5),
        // The Petersen graph is a (diameter-2) sum equilibrium — found by
        // this reproduction while building the corpus.
        classic::petersen(),
        repaired_fig3(),
    ];
    for g in sum_equilibria {
        assert!(SumGame::is_equilibrium(&g));
    }
    let not_sum = [
        classic::path(5),
        classic::cycle(6),
        classic::cycle(9),
        classic::double_star(2, 2),
        fig3_graph(),
    ];
    for g in not_sum {
        assert!(!SumGame::is_equilibrium(&g));
    }
}
