//! Property tests pinning the two round-mode kernels to their naive
//! counterparts, byte for byte:
//!
//! 1. **Batch repair ≡ sequential repairs.** Applying an activation
//!    round's edge-disjoint swaps to a [`DynamicApsp`] as one
//!    [`apply_batch`](DynamicApsp::apply_batch) at the round barrier must
//!    produce exactly the matrix that per-swap
//!    [`apply_swap`](DynamicApsp::apply_swap) repairs composed in order
//!    produce — and both must equal a full rebuild of the final graph.
//!    Replayed on Erdős–Rényi graphs and uniform random trees over 500+
//!    random rounds (deterministic volume floor below the proptest
//!    cases), at both fallback-threshold extremes.
//! 2. **Masked scan from base ≡ fresh masked APSP.** Deriving the APSP of
//!    `G − e` from the maintained base matrix by copy-plus-repair
//!    ([`masked_apsp_from_base`]) must be byte-identical to the `n`
//!    masked-BFS build ([`DistanceMatrix::build_masked`]) for **every**
//!    edge, and the swap scans built from either matrix must agree on
//!    every verdict — including the sharded candidate loop at `n` large
//!    enough to fan out over the worker pool.

use bncg::dynamics::rounds::{resolve_round, step_round};
use bncg::game::context::EvalContext;
use bncg::game::evaluator::EdgeSwapScan;
use bncg::game::objective::{MaxObjective, Objective, SumObjective};
use bncg::graph::adjacency::{Edge, SwapApplied};
use bncg::graph::dynamic::{masked_apsp_from_base, DynamicApsp};
use bncg::graph::generators::random::{gnp, random_tree};
use bncg::graph::{DistanceMatrix, Graph, V};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Sparse Erdős–Rényi graph on up to `max_n` vertices.
fn er_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (8usize..=max_n, any::<u64>()).prop_map(|(n, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = (3.0 / n as f64).min(0.9);
        gnp(&mut rng, n, p)
    })
}

/// Uniform random labeled tree on up to `max_n` vertices.
fn tree(max_n: usize) -> impl Strategy<Value = Graph> {
    (8usize..=max_n, any::<u64>()).prop_map(|(n, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        random_tree(&mut rng, n)
    })
}

/// Draws a random **round**: up to `k` swap moves with pairwise-disjoint
/// edge footprints, exactly the well-formedness the engine's conflict
/// resolution guarantees. Degenerate deletions (`w2` already adjacent)
/// and no-ops (`w2 == w`) are drawn on purpose — the batch must digest
/// every record shape.
fn random_round<R: Rng>(rng: &mut R, g: &Graph, k: usize) -> Vec<(V, V, V)> {
    let edges = g.edge_vec();
    if edges.is_empty() {
        return Vec::new();
    }
    let n = g.n() as V;
    let mut touched: Vec<Edge> = Vec::new();
    let mut round = Vec::new();
    for _ in 0..8 * k {
        if round.len() == k {
            break;
        }
        let e = edges[rng.gen_range(0..edges.len())];
        let (v, w) = if rng.gen_bool(0.5) {
            (e.u, e.v)
        } else {
            (e.v, e.u)
        };
        let mut w2 = rng.gen_range(0..n);
        if w2 == v {
            w2 = if w2 + 1 < n { w2 + 1 } else { 0 };
        }
        if w2 == v {
            continue;
        }
        let fp = [Edge::new(v, w), Edge::new(v, w2)];
        if fp.iter().any(|edge| touched.contains(edge)) {
            continue;
        }
        touched.extend_from_slice(&fp);
        round.push((v, w, w2));
    }
    round
}

/// Applies one random round three ways — per-swap repairs in order, one
/// batch repair, full rebuild — and asserts all three matrices are
/// byte-identical. Mutates `g` to the post-round state and returns the
/// number of swaps the round carried.
fn check_round(
    g: &mut Graph,
    seq: &mut DynamicApsp,
    bat: &mut DynamicApsp,
    rng: &mut StdRng,
    k: usize,
    context: &str,
) -> usize {
    let round = random_round(rng, g, k);
    if round.is_empty() {
        return 0;
    }
    // Sequential arm: repair through every intermediate graph state.
    let mut records: Vec<SwapApplied> = Vec::with_capacity(round.len());
    for &(v, w, w2) in &round {
        let rec = g.apply_swap(v, w, w2);
        seq.apply_swap(&g.to_csr(), &rec);
        records.push(rec);
    }
    // Batch arm: one repair at the round barrier.
    let csr = g.to_csr();
    bat.apply_batch(&csr, &records);
    assert_eq!(
        bat.matrix(),
        seq.matrix(),
        "batch repair diverged from sequential per-swap repairs ({context})"
    );
    let fresh = DistanceMatrix::build(&csr);
    assert_eq!(
        bat.matrix(),
        &fresh,
        "batch repair diverged from full rebuild ({context})"
    );
    fresh.recycle();
    round.len()
}

/// Replays `rounds` random rounds on `g`, checking batch-vs-sequential
/// byte identity after every round. Returns rounds actually exercised.
fn replay_rounds(mut g: Graph, seed: u64, rounds: usize, k: usize, threshold: usize) -> usize {
    let mut rng = StdRng::seed_from_u64(seed);
    let csr0 = g.to_csr();
    let mut seq = DynamicApsp::build(&csr0);
    let mut bat = DynamicApsp::build(&csr0);
    seq.set_max_repair_rows(g.n());
    bat.set_max_repair_rows(threshold);
    let mut exercised = 0;
    for r in 0..rounds {
        let ctx = format!("round {r}, n {}, threshold {threshold}", g.n());
        if check_round(&mut g, &mut seq, &mut bat, &mut rng, k, &ctx) > 0 {
            exercised += 1;
        }
    }
    exercised
}

#[test]
fn five_hundred_plus_random_rounds_stay_byte_identical() {
    // Deterministic volume floor: ≥ 500 verified rounds across ER graphs
    // and trees, multi-swap batches throughout, at the default (never
    // fall back) threshold.
    let mut rng = StdRng::seed_from_u64(0x0040_07E5);
    let mut total = 0usize;
    for i in 0..4 {
        let er = gnp(&mut rng, 26, 0.14);
        total += replay_rounds(er, 0xE0 + i, 80, 5, 26);
        let t = random_tree(&mut rng, 22);
        total += replay_rounds(t, 0x70 + i, 80, 4, 22);
    }
    assert!(
        total >= 500,
        "volume floor not met: only {total} rounds verified"
    );
}

#[test]
fn batch_fallback_threshold_extremes_agree() {
    // Threshold 0 forces every effective batch to rebuild; threshold n
    // never falls back. Both must match the sequential ground truth.
    let mut rng = StdRng::seed_from_u64(0xFA11);
    let er = gnp(&mut rng, 24, 0.15);
    assert!(replay_rounds(er.clone(), 1, 40, 4, 0) > 0);
    assert!(replay_rounds(er, 2, 40, 4, 24) > 0);
    let t = random_tree(&mut rng, 20);
    assert!(replay_rounds(t.clone(), 3, 40, 3, 0) > 0);
    assert!(replay_rounds(t, 4, 40, 3, 20) > 0);
}

/// Masked-scan identity over every edge of `g`.
fn assert_masked_scans_match(g: &Graph, context: &str) {
    let csr = g.to_csr();
    let base = DistanceMatrix::build(&csr);
    for e in g.edge_vec() {
        let derived = masked_apsp_from_base(&csr, &base, (e.u, e.v));
        let fresh = DistanceMatrix::build_masked(&csr, (e.u, e.v));
        assert_eq!(
            derived, fresh,
            "copy-plus-repair masked APSP diverged at edge {e:?} ({context})"
        );
        derived.recycle();
        fresh.recycle();
    }
    base.recycle();
}

#[test]
fn masked_scan_from_base_matches_fresh_masked_apsp_deterministic_volume() {
    // ≥ 500 edges verified across ER graphs and trees.
    let mut rng = StdRng::seed_from_u64(0x5CA0);
    let mut edges = 0usize;
    for _ in 0..12 {
        let er = gnp(&mut rng, 30, 0.12);
        edges += er.m();
        assert_masked_scans_match(&er, "er");
        let t = random_tree(&mut rng, 26);
        edges += t.m();
        assert_masked_scans_match(&t, "tree");
    }
    assert!(edges >= 500, "only {edges} edges verified");
}

#[test]
fn scan_from_base_and_fresh_scan_agree_on_every_verdict() {
    let mut rng = StdRng::seed_from_u64(0xBEE5);
    let g = gnp(&mut rng, 24, 0.16);
    let csr = g.to_csr();
    let base = DistanceMatrix::build(&csr);
    for e in g.edge_vec() {
        let fresh = EdgeSwapScan::new(&csr, e.u, e.v);
        let derived = EdgeSwapScan::from_base(&csr, &base, e.u, e.v);
        for agent in [e.u, e.v] {
            assert_eq!(
                fresh.deletion_cost::<SumObjective>(agent),
                derived.deletion_cost::<SumObjective>(agent),
                "deletion cost diverged at edge {e:?}"
            );
            let old_sum = SumObjective::cost_of_row(base.row(agent));
            assert_eq!(
                fresh.best_improving::<SumObjective>(agent, old_sum),
                derived.best_improving::<SumObjective>(agent, old_sum),
                "sum verdict diverged at edge {e:?}"
            );
            let old_max = MaxObjective::cost_of_row(base.row(agent));
            assert_eq!(
                fresh.best_improving::<MaxObjective>(agent, old_max),
                derived.best_improving::<MaxObjective>(agent, old_max),
                "max verdict diverged at edge {e:?}"
            );
        }
        fresh.recycle();
        derived.recycle();
    }
    base.recycle();
}

#[test]
fn sharded_candidate_loop_matches_exhaustive_scan_at_large_n() {
    // n ≥ 1024 pushes best_improving onto the parallel candidate shards;
    // the winner must still be the exhaustive scan's first minimum
    // (lowest new cost, then lowest w2 — all_improving lists candidates
    // in ascending w2 order, so its stable minimum is that exact witness).
    let mut rng = StdRng::seed_from_u64(0x10AD);
    let g = gnp(&mut rng, 1100, 0.004);
    let csr = g.to_csr();
    let base = DistanceMatrix::build(&csr);
    let edges = g.edge_vec();
    for e in edges.iter().take(6) {
        let scan = EdgeSwapScan::from_base(&csr, &base, e.u, e.v);
        let old = SumObjective::cost_of_row(base.row(e.u));
        let sharded = scan.best_improving::<SumObjective>(e.u, old);
        let exhaustive = scan
            .all_improving::<SumObjective>(e.u, old)
            .into_iter()
            .min_by_key(|s| (s.new_cost, s.mv.w2));
        assert_eq!(sharded, exhaustive, "shard combine broke determinism");
        scan.recycle();
    }
    base.recycle();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn er_rounds_match_sequential_repairs(g in er_graph(32), seed in any::<u64>()) {
        replay_rounds(g.clone(), seed, 10, 5, g.n());
        replay_rounds(g, seed, 10, 5, 0);
    }

    #[test]
    fn tree_rounds_match_sequential_repairs(t in tree(26), seed in any::<u64>()) {
        replay_rounds(t.clone(), seed, 10, 4, t.n());
        replay_rounds(t, seed, 10, 4, 0);
    }

    #[test]
    fn masked_scans_match_on_random_graphs(g in er_graph(28)) {
        assert_masked_scans_match(&g, "proptest er");
    }

    #[test]
    fn resolved_rounds_apply_cleanly_and_batch_repair_tracks_them(
        g in er_graph(24),
        ) {
        // End-to-end: run the actual engine round step on a maintained
        // context and pin the context's base matrix to a fresh build after
        // every barrier (this exercises proposals, resolution, batch
        // application, and repair together).
        let mut g = g;
        let mut ctx = EvalContext::new(&g);
        ctx.base();
        for _ in 0..6 {
            let step = step_round(
                &SumObjective,
                &mut ctx,
                &mut g,
                bncg::dynamics::engine::Response::Best,
            );
            let fresh = EvalContext::new(&g);
            for v in 0..g.n() as V {
                prop_assert_eq!(
                    ctx.base().row(v),
                    fresh.base().row(v),
                    "row {} diverged after a round barrier", v
                );
            }
            if step.proposed == 0 {
                break;
            }
        }
    }

    #[test]
    fn resolution_is_deterministic_and_conflict_free(g in er_graph(24)) {
        let ctx = EvalContext::new(&g);
        let proposals = ctx.best_responses_par::<SumObjective>();
        let a = resolve_round(&proposals);
        let b = resolve_round(&proposals);
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(x.mv, y.mv);
        }
        // Pairwise edge-disjointness of the accepted set.
        for (i, x) in a.iter().enumerate() {
            for y in &a[i + 1..] {
                prop_assert!(
                    !x.mv.conflicts_with(&y.mv),
                    "accepted moves {:?} and {:?} share an edge", x.mv, y.mv
                );
            }
        }
        // Lowest-agent priority: the first proposer is always accepted.
        if let Some(first) = proposals.iter().flatten().next() {
            prop_assert_eq!(&a[0].mv, &first.mv);
        }
    }
}
