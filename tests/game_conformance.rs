//! The cross-engine game-conformance matrix.
//!
//! Two layers of evidence that routing the whole stack through
//! [`GameRules`](bncg::game::rules::GameRules) changed *nothing* for the
//! basic AlonDHL10 game and holds every engine to the same trajectory for
//! the variant games:
//!
//! 1. **Golden byte identity** — the committed `tests/data/golden_*.txt`
//!    files were rendered against the pre-`GameRules` engines. Re-render
//!    the same battery here and diff byte-for-byte: any drift in a move,
//!    a social-cost reading, or an outcome is a conformance failure. The
//!    battery pins a deterministic 500+-step floor (2742 applied moves).
//! 2. **Engine fan-out** — [`trace_engines`] runs one scenario through
//!    the serial round engine, a hand-stepped `step_round` loop, the
//!    round service (serial and pipelined), and a service resumed from a
//!    crash-truncated journal, then asserts record-level equivalence of
//!    the normalized traces. Deterministic batteries cover every shipped
//!    rule set; proptest sweeps cover ER graphs and trees under both
//!    objectives, both response rules, and both fallback-threshold
//!    extremes.

use bncg::conformance::{
    golden_path, golden_scenarios, render_golden, trace_engines, ROUND_FAMILY_ENGINES,
};
use bncg::dynamics::engine::Response;
use bncg::dynamics::rounds::{RoundConfig, RoundDynamics};
use bncg::dynamics::service::{RoundService, ServiceConfig};
use bncg::dynamics::sink::MemorySink;
use bncg::game::objective::{MaxObjective, SumObjective};
use bncg::game::rules::{BoundedBudgetGame, GameRules, InterestGame, TwoNeighborhoodGame};
use bncg::graph::generators::random::{gnp, random_tree};
use bncg::graph::{Graph, RepairStrategy};
use bncg::testkit::conformance::assert_equivalent;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

// ---------------------------------------------------------------------------
// Satellite 1a: golden byte identity against the pre-refactor engines.

#[test]
fn golden_trajectories_are_byte_identical_to_the_prerefactor_pins() {
    let mut steps = 0usize;
    for s in golden_scenarios() {
        let rendered = render_golden(&s);
        let committed = std::fs::read_to_string(golden_path(s.name)).unwrap_or_else(|e| {
            panic!(
                "missing committed golden {:?} — regenerate with \
                 `cargo run --release --example golden_trajectories` ({e})",
                s.name
            )
        });
        assert_eq!(
            rendered.text, committed,
            "golden {:?} drifted from its pre-GameRules pin",
            s.name
        );
        steps += rendered.steps;
    }
    assert!(
        steps >= 500,
        "golden battery thinned out: only {steps} pinned steps"
    );
}

// ---------------------------------------------------------------------------
// Satellite: the engine fan-out, deterministic battery over every rule
// set the workspace ships.

fn conformance<R: GameRules>(rules: &R, start: &Graph, response: Response, label: &str) -> usize {
    let config = RoundConfig {
        response,
        ..RoundConfig::default()
    };
    let traces = trace_engines(rules, start, config);
    assert_eq!(traces.len(), ROUND_FAMILY_ENGINES.len());
    assert_equivalent(&traces, label)
}

fn starts(seed: u64) -> Vec<(Graph, &'static str)> {
    let mut rng = StdRng::seed_from_u64(seed);
    vec![
        (gnp(&mut rng, 20, 0.16), "er20"),
        (gnp(&mut rng, 26, 0.12), "er26"),
        (random_tree(&mut rng, 22), "tree22"),
    ]
}

#[test]
fn basic_game_agrees_across_all_engines() {
    let mut rounds = 0usize;
    for (g, tag) in starts(0xC0F1) {
        for response in [Response::Best, Response::FirstImproving] {
            rounds += conformance(&SumObjective, &g, response, &format!("sum/{tag}"));
            rounds += conformance(&MaxObjective, &g, response, &format!("max/{tag}"));
        }
    }
    assert!(rounds >= 20, "battery too thin: {rounds} rounds");
}

#[test]
fn bounded_budget_game_agrees_across_all_engines() {
    for (g, tag) in starts(0xC0F2) {
        let rules = BoundedBudgetGame::<SumObjective>::uniform(g.n(), 3);
        conformance(&rules, &g, Response::Best, &format!("budget-sum/{tag}"));
        let rules = BoundedBudgetGame::<MaxObjective>::uniform(g.n(), 4);
        conformance(
            &rules,
            &g,
            Response::FirstImproving,
            &format!("budget-max/{tag}"),
        );
    }
}

#[test]
fn interest_game_agrees_across_all_engines() {
    for (g, tag) in starts(0xC0F3) {
        let rules = InterestGame::ring(g.n(), 3);
        conformance(&rules, &g, Response::Best, &format!("interest/{tag}"));
        conformance(
            &rules,
            &g,
            Response::FirstImproving,
            &format!("interest-first/{tag}"),
        );
    }
}

#[test]
fn two_neighborhood_game_agrees_across_all_engines() {
    for (g, tag) in starts(0xC0F4) {
        conformance(
            &TwoNeighborhoodGame,
            &g,
            Response::Best,
            &format!("2nb/{tag}"),
        );
        conformance(
            &TwoNeighborhoodGame,
            &g,
            Response::FirstImproving,
            &format!("2nb-first/{tag}"),
        );
    }
}

// ---------------------------------------------------------------------------
// Threshold extremes: the fallback threshold (rows repaired per deletion
// before a full rebuild is cheaper) moves work between repair and
// rebuild; it must never move the trajectory. Extremes on the service,
// diffed against the plain serial engine.

fn threshold_extremes<O: bncg::game::objective::Objective + GameRules + Default>(
    start: &Graph,
    label: &str,
) {
    let config = RoundConfig::default();
    let mut reference = MemorySink::new();
    let res = RoundDynamics::<O>::new(config).run_with_sink(start, &mut reference);
    for rows in [0, start.n() * start.n()] {
        let mut service = RoundService::<O>::with_rules(
            start,
            ServiceConfig {
                rounds: config,
                pipelined: false,
            },
            RepairStrategy::default(),
            O::default(),
        );
        service.set_max_repair_rows(rows);
        let mut sink = MemorySink::new();
        let report = service.run_session(&mut sink);
        assert_eq!(
            report.result.graph, res.graph,
            "final graph diverged at threshold {rows} ({label})"
        );
        assert_eq!(
            report.result.outcome, res.outcome,
            "outcome diverged at threshold {rows} ({label})"
        );
        assert_eq!(
            sink.records.len(),
            reference.records.len(),
            "round count diverged at threshold {rows} ({label})"
        );
        for (a, b) in sink.records.iter().zip(&reference.records) {
            assert_eq!(
                (a.round, a.proposed, a.applied, a.social_cost),
                (b.round, b.proposed, b.applied, b.social_cost),
                "record diverged at threshold {rows} ({label})"
            );
        }
    }
}

#[test]
fn threshold_extremes_never_move_the_trajectory() {
    for (g, tag) in starts(0xC0F5) {
        threshold_extremes::<SumObjective>(&g, &format!("sum/{tag}"));
        threshold_extremes::<MaxObjective>(&g, &format!("max/{tag}"));
    }
}

// ---------------------------------------------------------------------------
// Proptest sweeps: random ER graphs and trees through the full fan-out.

fn er_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (8..max_n, any::<u64>()).prop_map(|(n, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        gnp(&mut rng, n, 0.18)
    })
}

fn tree_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (8..max_n, any::<u64>()).prop_map(|(n, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        random_tree(&mut rng, n)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn random_er_graphs_agree_across_engines_and_games(g in er_graph(22)) {
        for response in [Response::Best, Response::FirstImproving] {
            conformance(&SumObjective, &g, response, "prop/er/sum");
            conformance(&MaxObjective, &g, response, "prop/er/max");
        }
        conformance(
            &BoundedBudgetGame::<SumObjective>::uniform(g.n(), 3),
            &g,
            Response::Best,
            "prop/er/budget",
        );
        conformance(&InterestGame::ring(g.n(), 2), &g, Response::Best, "prop/er/interest");
        conformance(&TwoNeighborhoodGame, &g, Response::Best, "prop/er/2nb");
    }

    #[test]
    fn random_trees_agree_across_engines_and_games(g in tree_graph(20)) {
        for response in [Response::Best, Response::FirstImproving] {
            conformance(&SumObjective, &g, response, "prop/tree/sum");
            conformance(&MaxObjective, &g, response, "prop/tree/max");
        }
        conformance(
            &BoundedBudgetGame::<MaxObjective>::uniform(g.n(), 3),
            &g,
            Response::Best,
            "prop/tree/budget",
        );
        conformance(&TwoNeighborhoodGame, &g, Response::FirstImproving, "prop/tree/2nb");
    }
}
