//! Property tests pinning the compact-distance kernel layer to a scalar
//! `u32` reference.
//!
//! The kernels in `bncg_graph::kernels` are the vectorized (SWAR / SIMD)
//! primitives under every hot row scan: the min-plus insertion blend, the
//! sum and eccentricity reductions, and the fused k-term batch blend. Each
//! property generates random compact rows (with `UNREACHABLE` sentinels
//! sprinkled in), evaluates the kernel, and compares against an
//! independent scalar implementation computed in `u32` — after widening,
//! the results must be **identical**, sentinel semantics included. A
//! guard test asserts that the `u32 → u16` narrowing seam panics cleanly
//! on distance overflow instead of wrapping.

use bncg::graph::kernels::{
    self, blend_cost_ecc_scalar, blend_cost_sum_scalar, frontier_relax_scalar,
    fused_blend_cost_scalar, gather_min_plus_scalar, min_blend_scalar, narrow_checked,
    row_cost_scalar, swar, BlendTerm, Dist, RowCost, INF_SUM, MAX_FINITE_DIST, UNREACHABLE_D,
};
use bncg::graph::V;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Widened view of a compact row (`UNREACHABLE_D ↦ u32::MAX`).
fn widen_row(row: &[Dist]) -> Vec<u32> {
    row.iter().map(|&d| kernels::widen(d)).collect()
}

/// Independent u32 reference for the one-sided blend cost: sum and max of
/// `min(base, 1 + via)` over widened rows, `u64::MAX` on disconnection.
fn u32_blend_reference(base: &[u32], via: &[u32]) -> (u64, u64) {
    let mut sum = 0u64;
    let mut mx = 0u32;
    for (&b, &v) in base.iter().zip(via) {
        let d = b.min(v.saturating_add(1));
        if d == u32::MAX {
            return (u64::MAX, u64::MAX);
        }
        mx = mx.max(d);
        sum += u64::from(d);
    }
    (sum, u64::from(mx))
}

/// Independent u32 reference for the plain row aggregate.
fn u32_row_reference(row: &[u32]) -> (u64, u64) {
    let mut sum = 0u64;
    let mut mx = 0u32;
    for &d in row {
        if d == u32::MAX {
            return (u64::MAX, u64::MAX);
        }
        mx = mx.max(d);
        sum += u64::from(d);
    }
    (sum, u64::from(mx))
}

/// Random compact row: lengths straddle every SIMD/SWAR lane boundary,
/// values straddle the saturation range, and sentinels appear with
/// ~1/8 density.
fn compact_row(max_len: usize) -> impl Strategy<Value = Vec<Dist>> {
    (0usize..=max_len, any::<u64>()).prop_map(|(len, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..len)
            .map(|_| {
                if rng.gen_range(0..8u32) == 0 {
                    UNREACHABLE_D
                } else if rng.gen_range(0..8u32) == 0 {
                    // Near-saturation values exercise the clamp paths.
                    MAX_FINITE_DIST - rng.gen_range(0..3u16)
                } else {
                    rng.gen_range(0..2000u16)
                }
            })
            .collect()
    })
}

/// Pair of equal-length random rows.
fn row_pair(max_len: usize) -> impl Strategy<Value = (Vec<Dist>, Vec<Dist>)> {
    (0usize..=max_len, any::<u64>()).prop_map(|(len, seed)| {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
        let gen_row = |rng: &mut StdRng| {
            (0..len)
                .map(|_| {
                    if rng.gen_range(0..8u32) == 0 {
                        UNREACHABLE_D
                    } else {
                        rng.gen_range(0..2000u16)
                    }
                })
                .collect::<Vec<Dist>>()
        };
        let a = gen_row(&mut rng);
        let b = gen_row(&mut rng);
        (a, b)
    })
}

/// Body of `blend_costs_match_u32_reference` (kept out of the `proptest!`
/// macro, whose shim token-munches whole bodies).
fn check_blend_costs(base: &[Dist], via: &[Dist]) {
    let (wsum, wecc) = u32_blend_reference(&widen_row(base), &widen_row(via));
    assert_eq!(kernels::blend_cost_sum(base, via), wsum);
    assert_eq!(kernels::blend_cost_ecc(base, via), wecc);
    assert_eq!(swar::blend_cost_sum(base, via), wsum);
    assert_eq!(swar::blend_cost_ecc(base, via), wecc);
    assert_eq!(blend_cost_sum_scalar(base, via), wsum);
    assert_eq!(blend_cost_ecc_scalar(base, via), wecc);
}

/// Body of `min_blend_matches_u32_reference`: the in-place min-blend
/// writes exactly `min(base, 1 + via)` lane by lane.
fn check_min_blend(base: &[Dist], via: &[Dist]) {
    let wide: Vec<u32> = widen_row(base)
        .iter()
        .zip(widen_row(via).iter())
        .map(|(&b, &v)| b.min(v.saturating_add(1)))
        .collect();
    let mut dispatched = base.to_vec();
    kernels::min_blend(&mut dispatched, via);
    assert_eq!(widen_row(&dispatched), wide);
    let mut via_swar = base.to_vec();
    swar::min_blend(&mut via_swar, via);
    assert_eq!(via_swar, dispatched);
    let mut via_scalar = base.to_vec();
    min_blend_scalar(&mut via_scalar, via);
    assert_eq!(via_scalar, dispatched);
}

/// Body of `row_cost_matches_u32_reference`.
fn check_row_cost(row: &[Dist]) {
    let (wsum, wecc) = u32_row_reference(&widen_row(row));
    let c = kernels::row_cost(row);
    assert_eq!(c.sum, wsum);
    assert_eq!(
        if c.ecc == UNREACHABLE_D {
            u64::MAX
        } else {
            u64::from(c.ecc)
        },
        wecc
    );
    assert_eq!(swar::row_cost(row), c);
    assert_eq!(row_cost_scalar(row), c);
}

/// Body of `fused_batch_blend_matches_sequential_u32`: the fused k-term
/// batch blend is byte-identical (and aggregate-identical) to applying the
/// same terms one scalar u32 blend at a time — the order-independence that
/// justifies fusing a whole round's insertions into one pass.
fn check_fused_batch(row0: &[Dist], seed: u64, k: usize) {
    let n = row0.len();
    let mut rng = StdRng::seed_from_u64(seed);
    let rand_row = |rng: &mut StdRng| {
        (0..n)
            .map(|_| {
                if rng.gen_range(0..8u32) == 0 {
                    UNREACHABLE_D
                } else {
                    rng.gen_range(0..1500u16)
                }
            })
            .collect::<Vec<Dist>>()
    };
    let snaps: Vec<(Vec<Dist>, Vec<Dist>)> = (0..k)
        .map(|_| {
            let a = rand_row(&mut rng);
            let b = rand_row(&mut rng);
            (a, b)
        })
        .collect();
    let pick = |rng: &mut StdRng| {
        if rng.gen_range(0..6u32) == 0 {
            UNREACHABLE_D
        } else {
            rng.gen_range(1..1000u16)
        }
    };
    let consts: Vec<(Dist, Dist)> = (0..k)
        .map(|_| {
            let a = pick(&mut rng);
            let b = pick(&mut rng);
            (a, b)
        })
        .collect();
    let terms: Vec<BlendTerm<'_>> = (0..k)
        .map(|j| BlendTerm {
            add_a: consts[j].0,
            row_a: &snaps[j].0,
            add_b: consts[j].1,
            row_b: &snaps[j].1,
        })
        .collect();

    // Sequential u32 reference: apply each term's two min sides in order
    // over the widened row.
    let mut wide = widen_row(row0);
    for j in 0..k {
        let ca = kernels::widen(consts[j].0);
        let cb = kernels::widen(consts[j].1);
        for t in 0..n {
            let via_a = ca.saturating_add(kernels::widen(snaps[j].0[t]));
            let via_b = cb.saturating_add(kernels::widen(snaps[j].1[t]));
            wide[t] = wide[t].min(via_a).min(via_b);
        }
    }
    // u32 saturation can land between MAX_FINITE_DIST and u32::MAX; the
    // compact kernels clamp those lanes to the sentinel. Both encode "no
    // real path this short exists", so normalize the reference the same
    // way the kernels do.
    for w in &mut wide {
        if *w >= u32::from(UNREACHABLE_D) {
            *w = u32::MAX;
        }
    }
    let (wsum, wecc) = u32_row_reference(&wide);

    let mut fused = row0.to_vec();
    let fc = kernels::fused_blend_cost(&mut fused, &terms);
    assert_eq!(widen_row(&fused), wide);
    assert_eq!(fc.sum, wsum);
    assert_eq!(
        if fc.ecc == UNREACHABLE_D {
            u64::MAX
        } else {
            u64::from(fc.ecc)
        },
        wecc
    );

    // And the three compact strata agree bit for bit.
    let mut scalar16 = row0.to_vec();
    let sc = fused_blend_cost_scalar(&mut scalar16, &terms);
    let mut swar16 = row0.to_vec();
    let wc = swar::fused_blend_cost(&mut swar16, &terms);
    assert_eq!(scalar16, fused);
    assert_eq!(sc, fc);
    assert_eq!(swar16, fused);
    assert_eq!(wc, fc);
}

/// Independent u32 reference for the masked gather min-plus: widen, gather,
/// reduce with first-attaining argmin, saturate back into the compact
/// domain.
fn u32_gather_reference(row: &[Dist], idx: &[V]) -> (Dist, u32) {
    let wide = widen_row(row);
    let mut min = u32::MAX;
    let mut pos = u32::MAX;
    for (p, &v) in idx.iter().enumerate() {
        let d = wide[v as usize];
        if pos == u32::MAX || d < min {
            min = d;
            pos = p as u32;
        }
    }
    if pos == u32::MAX {
        return (UNREACHABLE_D, u32::MAX);
    }
    let plus = min.saturating_add(1).min(u32::from(UNREACHABLE_D)) as Dist;
    (plus, pos)
}

/// Independent u32 reference for the segmented frontier relaxation.
fn u32_frontier_reference(row: &[Dist], idx: &[V], seg: &[u32], out: &[Dist]) -> Vec<Dist> {
    let wide = widen_row(row);
    out.iter()
        .enumerate()
        .map(|(j, &slot)| {
            let mut min = u32::MAX;
            for &v in &idx[seg[j] as usize..seg[j + 1] as usize] {
                min = min.min(wide[v as usize]);
            }
            let plus = min.saturating_add(1).min(u32::from(UNREACHABLE_D)) as Dist;
            slot.min(plus)
        })
        .collect()
}

/// Random frontier over a random compact row: index list into the row plus
/// segment offsets carving it into empty, single-element, and longer runs.
fn frontier_case(
    max_row: usize,
    max_idx: usize,
) -> impl Strategy<Value = (Vec<Dist>, Vec<V>, Vec<u32>)> {
    (compact_row(max_row), 0usize..=max_idx, any::<u64>()).prop_map(|(row, len, seed)| {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xF00D_CAFE);
        let row = if row.is_empty() { vec![0] } else { row };
        let idx: Vec<V> = (0..len).map(|_| rng.gen_range(0..row.len()) as V).collect();
        let mut seg: Vec<u32> = vec![0];
        let mut at = 0usize;
        while at < len {
            // Bias toward tiny segments so empty and single-element
            // frontiers appear constantly alongside vector-width ones.
            let step = match rng.gen_range(0..4u32) {
                0 => 0,
                1 => 1,
                2 => rng.gen_range(0..=4usize),
                _ => rng.gen_range(0..=16usize),
            };
            at = (at + step).min(len);
            seg.push(at as u32);
        }
        if *seg.last().unwrap() as usize != len {
            seg.push(len as u32);
        }
        (row, idx, seg)
    })
}

/// Body of `gather_min_plus_matches_u32_reference`: all three strata agree
/// with the widened reference, argmin included.
fn check_gather_min_plus(row: &[Dist], idx: &[V]) {
    let expect = u32_gather_reference(row, idx);
    assert_eq!(kernels::gather_min_plus(row, idx), expect, "dispatch");
    assert_eq!(swar::gather_min_plus(row, idx), expect, "swar");
    assert_eq!(gather_min_plus_scalar(row, idx), expect, "scalar");
}

/// Body of `frontier_relax_matches_u32_reference`: the segmented
/// gather-min-plus matches the widened reference on every stratum,
/// including pre-lowered output slots.
fn check_frontier_relax(row: &[Dist], idx: &[V], seg: &[u32], seed: u64) {
    let slots = seg.len() - 1;
    let mut rng = StdRng::seed_from_u64(seed);
    let init: Vec<Dist> = (0..slots)
        .map(|_| {
            if rng.gen_range(0..3u32) == 0 {
                rng.gen_range(0..50u16) // pre-lowered slot: only decreases
            } else {
                UNREACHABLE_D
            }
        })
        .collect();
    let expect = u32_frontier_reference(row, idx, seg, &init);
    let mut a = init.clone();
    kernels::frontier_relax(row, idx, seg, &mut a);
    assert_eq!(a, expect, "dispatch");
    let mut b = init.clone();
    swar::frontier_relax(row, idx, seg, &mut b);
    assert_eq!(b, expect, "swar");
    let mut c = init;
    frontier_relax_scalar(row, idx, seg, &mut c);
    assert_eq!(c, expect, "scalar");
}

proptest! {
    #[test]
    fn gather_min_plus_matches_u32_reference(case in frontier_case(120, 80)) {
        let (row, idx, _) = case;
        check_gather_min_plus(&row, &idx);
    }

    #[test]
    fn frontier_relax_matches_u32_reference(
        case in frontier_case(120, 200),
        seed in any::<u64>(),
    ) {
        let (row, idx, seg) = case;
        check_frontier_relax(&row, &idx, &seg, seed);
    }

    #[test]
    fn blend_costs_match_u32_reference(pair in row_pair(200)) {
        let (base, via) = pair;
        check_blend_costs(&base, &via);
    }

    #[test]
    fn min_blend_matches_u32_reference(pair in row_pair(200)) {
        let (base, via) = pair;
        check_min_blend(&base, &via);
    }

    #[test]
    fn row_cost_matches_u32_reference(row in compact_row(300)) {
        check_row_cost(&row);
    }

    #[test]
    fn fused_batch_blend_matches_sequential_u32(
        pair in row_pair(150),
        seed in any::<u64>(),
        k in 1usize..5,
    ) {
        let (row0, _) = pair;
        check_fused_batch(&row0, seed, k);
    }
}

#[test]
fn frontier_kernels_handle_degenerate_frontiers() {
    // Empty frontier: nothing gathered, argmin is the sentinel position.
    let row = [7 as Dist, UNREACHABLE_D, 0];
    assert_eq!(
        kernels::gather_min_plus(&row, &[]),
        (UNREACHABLE_D, u32::MAX)
    );
    assert_eq!(swar::gather_min_plus(&row, &[]), (UNREACHABLE_D, u32::MAX));
    assert_eq!(gather_min_plus_scalar(&row, &[]), (UNREACHABLE_D, u32::MAX));
    // Single-element frontiers, finite and sentinel.
    check_gather_min_plus(&row, &[0]);
    check_gather_min_plus(&row, &[1]);
    check_gather_min_plus(&row, &[2]);
    // No segments at all, and all-empty segments.
    let mut out: [Dist; 0] = [];
    kernels::frontier_relax(&[], &[], &[0], &mut out);
    check_frontier_relax(&row, &[], &[0, 0, 0, 0], 42);
    // One single-element segment holding the sentinel must stay put.
    let mut out = [UNREACHABLE_D];
    kernels::frontier_relax(&[UNREACHABLE_D], &[0], &[0, 1], &mut out);
    assert_eq!(out, [UNREACHABLE_D]);
}

#[test]
fn narrow_checked_widen_roundtrip() {
    let src: Vec<u32> = (0..100)
        .map(|i| if i % 9 == 0 { u32::MAX } else { i * 37 })
        .collect();
    let mut dst = vec![0 as Dist; src.len()];
    narrow_checked(&src, &mut dst);
    assert_eq!(widen_row(&dst), src);
}

#[test]
#[should_panic(expected = "overflows the u16 distance domain")]
fn narrow_checked_panics_instead_of_wrapping() {
    // A graph with diameter ≥ u16::MAX − 1 must be rejected at the
    // narrowing seam, not silently wrapped into a small distance.
    let src = [0u32, 1, u32::from(MAX_FINITE_DIST) + 1];
    let mut dst = [0 as Dist; 3];
    narrow_checked(&src, &mut dst);
}

#[test]
#[should_panic(expected = "supports at most")]
fn matrix_build_rejects_oversized_graphs() {
    // The builders enforce the same bound up front: a graph with more
    // vertices than the compact domain can address must panic cleanly at
    // build time (a path that long would realize an unrepresentable
    // distance). Graph construction itself is cheap — the panic fires
    // before any BFS runs.
    use bncg::graph::distance::MAX_MATRIX_N;
    use bncg::graph::{DistanceMatrix, Graph};
    let n = MAX_MATRIX_N + 1;
    let g = Graph::new(n);
    let _ = DistanceMatrix::build(&g.to_csr());
}

#[test]
fn row_cost_default_is_empty_row() {
    // An empty row is trivially connected with sum 0 / ecc 0 — the
    // RowCost::default() used to seed the maintained aggregates.
    assert_eq!(kernels::row_cost(&[]), RowCost { sum: 0, ecc: 0 });
    assert_eq!(row_cost_scalar(&[]).sum, 0);
    assert_ne!(kernels::row_cost(&[UNREACHABLE_D]).sum, 0);
    assert_eq!(kernels::row_cost(&[UNREACHABLE_D]).sum, INF_SUM);
}
