//! Figure 4 expedition: the rotated torus, drawn and verified.
//!
//! ```text
//! cargo run --release --example torus_expedition [k]
//! ```
//!
//! Rebuilds the Θ(√n)-diameter max equilibrium of Theorem 12, prints the
//! distance contours from the central vertex `(k, k)` exactly like the
//! paper's Figure 4, then verifies every claim of the proof at a sweep of
//! sizes.

use bncg::constructions::torus::{rotated_torus, standard_torus, RotatedTorus};
use bncg::game::stability::{
    deletion_critical_violation, insertion_violation_at, is_insertion_stable,
};
use bncg::game::MaxGame;
use bncg::graph::{DistanceMatrix, V};

fn main() {
    let k: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(6);
    let torus = RotatedTorus::new(k);
    let g = rotated_torus(k);
    let dm = DistanceMatrix::build(&g.to_csr());

    println!(
        "=== Figure 4: rotated torus, k = {k}, n = 2k² = {} ===\n",
        g.n()
    );

    // Draw the distance contours from (k, k), like the shaded squares of
    // Figure 4. Cells with odd coordinate sum are not vertices.
    let center = torus.index(k, k);
    println!("distance contours from ({k}, {k}) (· = not a vertex):\n");
    for j in (0..2 * k).rev() {
        let mut line = String::new();
        for i in 0..2 * k {
            if (i + j) % 2 == 0 {
                let d = dm.get(center, torus.index(i, j));
                line.push_str(&format!("{d:>3}"));
            } else {
                line.push_str("  ·");
            }
        }
        println!("{line}");
    }

    // Verify the proof's three steps at this size.
    let ecc_ok = (0..g.n() as V).all(|v| dm.ecc(v) == Some(k as u32));
    println!("\n[1] every local diameter equals k:        {ecc_ok}");
    let dc = deletion_critical_violation(&g).is_none();
    println!("[2] deletion-critical:                     {dc}");
    let ins = if g.n() <= 200 {
        is_insertion_stable(&g)
    } else {
        insertion_violation_at(&dm, &g, center).is_none()
    };
    println!("[3] insertion-stable:                      {ins}");
    println!("=> max equilibrium (Theorem 12):           {}", dc && ins);

    // The paper's warning, demonstrated.
    let st = standard_torus(2 * k.max(3), 2 * k.max(3));
    println!(
        "\ncontrast: standard {0}x{0} torus is a max equilibrium: {1}",
        2 * k.max(3),
        MaxGame::is_equilibrium(&st)
    );

    // Scaling table: diameter / sqrt(n) -> 1/sqrt(2).
    println!("\nscaling (diameter = k = sqrt(n/2)):");
    println!(
        "{:>4} {:>8} {:>10} {:>14}",
        "k", "n", "diameter", "diam/sqrt(n)"
    );
    for kk in [2usize, 4, 6, 8, 12, 16, 24] {
        let gg = rotated_torus(kk);
        let d = bncg::graph::distance::diameter_ifub(&gg.to_csr()).unwrap();
        println!(
            "{:>4} {:>8} {:>10} {:>14.4}",
            kk,
            gg.n(),
            d,
            f64::from(d) / (gg.n() as f64).sqrt()
        );
    }
}
