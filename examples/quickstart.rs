//! Quickstart: the basic network creation game in five minutes.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Walks the core API: build graphs, compute usage costs, check the two
//! equilibrium notions, find improving swaps, and run swap dynamics.

use bncg::game::evaluator::agent_cost;
use bncg::game::objective::{MaxObjective, SumObjective};
use bncg::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    println!("=== basic network creation games: quickstart ===\n");

    // 1. The star: the unique sum-equilibrium tree (Theorem 1).
    let star = classic::star(8);
    println!(
        "star(8):   sum equilibrium? {:>5} | max equilibrium? {}",
        SumGame::is_equilibrium(&star),
        bncg::game::MaxGame::is_equilibrium(&star)
    );

    // 2. The path is not stable: its endpoint wants to re-attach.
    let path = classic::path(8);
    let witness = SumGame::find_improving_swap(&path).expect("paths are unstable");
    println!(
        "path(8):   agent {} swaps edge to {} for an edge to {} (sum {} -> {})",
        witness.mv.v, witness.mv.w, witness.mv.w2, witness.old_cost, witness.new_cost
    );

    // 3. Usage costs: the two objectives the paper studies.
    println!(
        "path(8):   endpoint sum-cost = {}, endpoint local diameter = {}",
        agent_cost::<SumObjective>(&path, 0),
        agent_cost::<MaxObjective>(&path, 0),
    );

    // 4. Swap dynamics: start from the path, let agents improve greedily.
    let mut rng = StdRng::seed_from_u64(1);
    let engine = SwapDynamics::<SumObjective>::new(DynamicsConfig::default());
    let result = engine.run(&path, &mut rng);
    let report = SumGame::analyze(&result.graph);
    println!(
        "dynamics:  {} moves over {} rounds -> diameter {:?}, equilibrium: {}",
        result.moves,
        result.rounds,
        report.diameter(),
        report.is_equilibrium()
    );
    assert!(
        bncg::graph::properties::is_star(&result.graph),
        "Theorem 1: tree dynamics must end at a star"
    );

    // 5. The max version: double stars are diameter-3 equilibria (Fig. 2).
    let ds = classic::double_star(3, 4);
    let max_report = bncg::game::MaxGame::analyze(&ds);
    println!(
        "D(3,4):    max equilibrium? {} (diameter {:?}, deletion-critical: {:?})",
        max_report.is_equilibrium(),
        max_report.diameter(),
        max_report.deletion_critical
    );

    // 6. Stability notions from Section 4.
    let torus = bncg::constructions::torus::rotated_torus(3);
    println!(
        "torus k=3: deletion-critical: {}, insertion-stable: {} -> max equilibrium of diameter {:?}",
        is_deletion_critical(&torus),
        is_insertion_stable(&torus),
        DistanceMatrix::build(&torus.to_csr()).diameter()
    );

    println!("\nAll quickstart checks passed.");
}
