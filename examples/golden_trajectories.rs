//! Regenerates the committed golden trajectory files under `tests/data/`.
//!
//! ```text
//! cargo run --release --example golden_trajectories
//! ```
//!
//! The goldens pin the *basic-game* behavior of every dynamics engine
//! byte-for-byte (see `bncg::conformance`); `tests/game_conformance.rs`
//! re-renders the same battery and diffs. Only rerun this generator when
//! a behavior change for the basic game is intentional — and say so in
//! the commit message, because it rewrites the conformance baseline.

use bncg::conformance::{golden_path, golden_scenarios, render_golden};

fn main() {
    let mut total_steps = 0usize;
    for s in golden_scenarios() {
        let golden = render_golden(&s);
        let path = golden_path(s.name);
        std::fs::create_dir_all(path.parent().unwrap()).expect("create tests/data");
        std::fs::write(&path, &golden.text).expect("write golden");
        total_steps += golden.steps;
        println!("{}: {} steps -> {}", s.name, golden.steps, path.display());
    }
    println!("total pinned steps: {total_steps}");
    assert!(
        total_steps >= 500,
        "golden battery must pin at least 500 applied moves, got {total_steps}"
    );
}
