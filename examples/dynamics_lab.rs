//! Dynamics lab: watch selfish agents sculpt a network.
//!
//! ```text
//! cargo run --release --example dynamics_lab [n] [extra_edges] [seed] [--metrics FILE]
//! ```
//!
//! Runs sum- and max-swap dynamics from the same random connected graph,
//! tracing the diameter and social quantities round by round, then
//! reports the equilibrium structure both objectives settle into. With
//! `--metrics FILE`, additionally replays the start under the
//! round-based engine and streams one JSON Lines `RoundRecord` per round
//! (proposal funnel, social-cost delta, per-phase repair timings — see
//! ARCHITECTURE.md § Observability for the schema).

use bncg::dynamics::engine::{DynamicsConfig, Response, Schedule};
use bncg::game::context::EvalContext;
use bncg::game::objective::{MaxObjective, Objective, SumObjective};
use bncg::game::{MaxGame, SumGame};
use bncg::graph::{DistanceMatrix, Graph, V};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn trace_dynamics<O: Objective>(label: &str, start: &Graph) -> Graph {
    println!("--- {label} dynamics ---");
    println!(
        "{:>6} {:>9} {:>10} {:>12} {:>9}",
        "round", "moves", "diameter", "total dist", "max ecc"
    );
    let mut g = start.clone();
    let mut ctx = EvalContext::new(&g);
    let mut round = 0usize;
    loop {
        round += 1;
        let mut moves = 0usize;
        for v in 0..g.n() as V {
            if let Some(s) = ctx.best_response::<O>(v) {
                s.mv.apply(&mut g);
                ctx.refresh(&g);
                moves += 1;
            }
        }
        let dm = ctx.base();
        println!(
            "{:>6} {:>9} {:>10} {:>12} {:>9}",
            round,
            moves,
            dm.diameter().map_or(-1i64, i64::from),
            dm.total_distance().map_or(-1i64, |t| t as i64),
            dm.eccentricities()
                .map_or(-1i64, |e| i64::from(*e.iter().max().unwrap()))
        );
        if moves == 0 || round > 100 {
            break;
        }
    }
    g
}

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(24);
    let extra: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(6);
    let seed: u64 = std::env::args()
        .nth(3)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2024);

    let mut rng = StdRng::seed_from_u64(seed);
    let start = bncg::graph::generators::random::random_connected(&mut rng, n, extra);
    let dm0 = DistanceMatrix::build(&start.to_csr());
    println!(
        "start: n = {n}, m = {}, diameter = {:?}\n",
        start.m(),
        dm0.diameter()
    );

    let sum_final = trace_dynamics::<SumObjective>("sum", &start);
    let sum_report = SumGame::analyze(&sum_final);
    println!(
        "sum endpoint:  equilibrium = {}, diameter = {:?}, degree sequence head = {:?}\n",
        sum_report.is_equilibrium(),
        sum_report.diameter(),
        &sum_final.degree_sequence()[..4.min(n)]
    );

    let max_final = trace_dynamics::<MaxObjective>("max", &start);
    let max_report = MaxGame::analyze(&max_final);
    println!(
        "max endpoint:  swap-stable = {}, deletion-critical = {:?}, diameter = {:?}",
        max_report.swap_stable,
        max_report.deletion_critical,
        max_report.diameter()
    );

    // The engine-level API does the same thing with scheduling options:
    let config = DynamicsConfig {
        schedule: Schedule::RandomPermutation,
        response: Response::FirstImproving,
        ..DynamicsConfig::default()
    };
    let engine = bncg::dynamics::SwapDynamics::<SumObjective>::new(config);
    let result = engine.run(&start, &mut rng);
    println!(
        "\nengine (random schedule, first-improving): outcome {:?} after {} moves",
        result.outcome, result.moves
    );

    // Streaming pipeline: `--metrics FILE` re-runs the start under the
    // round-based engine with a JSONL sink attached.
    let args: Vec<String> = std::env::args().collect();
    if let Some(path) = args
        .iter()
        .position(|a| a == "--metrics")
        .and_then(|i| args.get(i + 1))
    {
        let file = std::fs::File::create(path).expect("create metrics file");
        let mut sink = bncg::dynamics::JsonlSink::new(std::io::BufWriter::new(file));
        let t = bncg::dynamics::run_traced_rounds_with_sink::<SumObjective>(
            &start,
            Response::Best,
            100,
            &mut sink,
        );
        if let Some(e) = sink.error() {
            // The run itself is fine — but the JSONL artifact is not, and
            // a silent partial file poisons downstream analysis. Be loud.
            eprintln!("metrics write to {path} failed: {e}");
            std::process::exit(1);
        } else {
            println!(
                "\nround metrics: {} JSONL records written to {path} (converged = {})",
                t.points.len(),
                t.converged
            );
        }
    }
}
