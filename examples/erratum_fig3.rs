//! The Figure 3 erratum, step by step.
//!
//! ```text
//! cargo run --release --example erratum_fig3
//! ```
//!
//! Rebuilds the paper's Theorem 5 witness exactly as printed, lets both
//! independent checkers judge it, walks through the improving swap the
//! published proof misses, and presents the repaired 17-vertex witness
//! that restores the theorem.

use bncg::constructions::fig3::{
    fig3_graph, fig3_printed_witness, generalized_fig3, repaired_fig3,
};
use bncg::game::objective::SumObjective;
use bncg::game::verify::{reference_cost, reference_is_sum_equilibrium};
use bncg::game::SumGame;
use bncg::graph::girth::girth;
use bncg::graph::DistanceMatrix;

fn main() {
    println!("=== Theorem 5 / Figure 3: erratum and repair ===\n");

    let g = fig3_graph();
    let dm = DistanceMatrix::build(&g.to_csr());
    println!(
        "printed construction: n={}, m={}, diameter={:?}, girth={:?}",
        g.n(),
        g.m(),
        dm.diameter(),
        girth(&g)
    );
    println!(
        "  sum equilibrium?  fast checker: {}   brute-force reference: {}",
        SumGame::is_equilibrium(&g),
        reference_is_sum_equilibrium(&g)
    );

    let w = fig3_printed_witness();
    println!(
        "\nthe overlooked swap: agent d1 (vertex {}) trades edge to c11 ({}) for c21 ({})",
        w.v, w.w, w.w2
    );
    let before = reference_cost::<SumObjective>(&g, w.v);
    let mut h = g.clone();
    w.apply(&mut h);
    let after = reference_cost::<SumObjective>(&h, w.v);
    println!(
        "  sum of distances from d1: {before} -> {after}  (gain {})",
        before - after
    );
    println!("  why the proof misses it: c21 is c11's matched partner, so");
    println!("  dropping d1-c11 costs only +1 (Lemma 8's adjacency exception),");
    println!("  while the swap gains 3 (c21, b2, d2 each get closer).");

    println!("\nper-vertex distance changes for d1:");
    let dm2 = DistanceMatrix::build(&h.to_csr());
    for x in 0..g.n() as u32 {
        let (a, b) = (dm.get(w.v, x), dm2.get(w.v, x));
        if a != b {
            println!("  vertex {x:>2}: {a} -> {b}");
        }
    }

    println!("\n=== the repair: four branches, all-odd matching parity ===\n");
    let r = repaired_fig3();
    let dmr = DistanceMatrix::build(&r.to_csr());
    println!(
        "repaired witness: n={}, m={}, diameter={:?}, girth={:?}",
        r.n(),
        r.m(),
        dmr.diameter(),
        girth(&r)
    );
    println!(
        "  sum equilibrium?  fast checker: {}   brute-force reference: {}",
        SumGame::is_equilibrium(&r),
        reference_is_sum_equilibrium(&r)
    );

    // Show the knife-edge: flip one matching parity and equilibrium dies.
    let broken = generalized_fig3(4, &[(0, 3)]);
    println!(
        "\nknife-edge: same 17 vertices with only one crossing -> equilibrium: {}",
        SumGame::is_equilibrium(&broken)
    );
    println!("\nTheorem 5's statement (a diameter-3 sum equilibrium exists) stands,");
    println!("with the repaired witness replacing the printed one.");
}
