//! Uniformity atlas: the Section 5 story on one page.
//!
//! ```text
//! cargo run --release --example uniformity_atlas
//! ```
//!
//! Measures ε-distance-uniformity across contrasting families, runs the
//! Theorem 13 power-graph uniformization, exhibits the spider that shows
//! pairwise uniformity is not enough, and checks the Theorem 15 ratio on
//! Abelian Cayley graphs.

use bncg::algebra::cayley::{complete_multipartite_cayley, dense_circulant};
use bncg::analysis::theorem13::power_uniformity_curve;
use bncg::analysis::uniformity::{almost_uniformity, theorem15_ratio, uniformity};
use bncg::constructions::spider::{pairwise_distance_histogram, spider};
use bncg::graph::generators::classic;
use bncg::graph::{DistanceMatrix, Graph};

fn measure(name: &str, g: &Graph) {
    let dm = DistanceMatrix::build(&g.to_csr());
    let u = uniformity(&dm).unwrap();
    let au = almost_uniformity(&dm).unwrap();
    let d = dm.diameter().unwrap();
    let ratio =
        theorem15_ratio(d, u.epsilon, g.n()).map_or("    n/a".to_string(), |r| format!("{r:7.3}"));
    println!(
        "{name:<28} n={:<5} diam={d:<3} eps={:.3} eps₂={:.3} t15-ratio={ratio}",
        g.n(),
        u.epsilon,
        au.epsilon
    );
}

fn main() {
    println!("=== distance uniformity across families ===\n");
    measure("complete K_32", &classic::complete(32));
    measure("star(64)", &classic::star(64));
    measure("cycle(64)", &classic::cycle(64));
    measure("hypercube Q_8", &classic::hypercube(8));
    measure("K_{16x4} (Cayley)", &complete_multipartite_cayley(16, 4));
    measure("dense circulant C_64(1..26)", &dense_circulant(64, 26));
    measure(
        "rotated torus k=6",
        &bncg::constructions::torus::rotated_torus(6),
    );

    println!("\n=== Theorem 13: uniformization by powers (cycle of 128) ===\n");
    let g = classic::cycle(128);
    for row in power_uniformity_curve(&g, &[1, 2, 4, 8, 15]).unwrap() {
        println!(
            "x={:<3} diameter={:<4} eps_uniform={:.3} eps_almost={:.3} (r={})",
            row.x, row.diameter, row.eps_uniform, row.eps_almost, row.r_almost
        );
    }

    println!("\n=== the spider: pairwise uniformity is NOT per-vertex uniformity ===\n");
    let sp = spider(8, 2, 40);
    let dm = DistanceMatrix::build(&sp.to_csr());
    let hist = pairwise_distance_histogram(&sp);
    let (modal, mass) = hist
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .unwrap();
    let au = almost_uniformity(&dm).unwrap();
    println!(
        "spider(8 legs, path 2, cluster 40): n={}, diameter={}",
        sp.n(),
        dm.diameter().unwrap()
    );
    println!(
        "  modal PAIRWISE distance {modal} carries {:.1}% of all pairs",
        mass * 100.0
    );
    println!(
        "  but the best PER-VERTEX almost-uniformity is eps = {:.3} (at r = {})",
        au.epsilon, au.r
    );
    println!("  -> no contradiction with Conjecture 14, exactly as the paper remarks.");
}
