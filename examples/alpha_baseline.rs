//! The α-game baseline, and the paper's "every α at once" transfer.
//!
//! ```text
//! cargo run --release --example alpha_baseline
//! ```
//!
//! Tours the classical Fabrikant-et-al. game this paper strips the
//! parameter from: player costs with edge ownership, the clique/star
//! optimum regimes, greedy deviation dynamics, and how one parameter-free
//! swap equilibrium yields price-of-anarchy data across the whole α axis.

use bncg::alpha::game::OwnedNetwork;
use bncg::alpha::nash::{greedy_dynamics, is_single_deviation_stable};
use bncg::alpha::poa::alpha_sweep;
use bncg::alpha::social::{clique_social_cost, optimal_topology, star_social_cost, Optimum};
use bncg::game::SumGame;
use bncg::graph::generators::classic;
use bncg::graph::DistanceMatrix;

fn main() {
    let n = 10;
    println!("=== the alpha-game on {n} players ===\n");

    // The optimum flips from clique to star at alpha = 2.
    println!(
        "{:>6} {:>14} {:>14} {:>8}",
        "alpha", "SC(clique)", "SC(star)", "OPT"
    );
    for alpha in [0.5, 1.0, 2.0, 3.0, 8.0] {
        let c = clique_social_cost(n, alpha);
        let s = star_social_cost(n, alpha);
        let opt = match optimal_topology(alpha) {
            Optimum::Clique => "clique",
            Optimum::Star => "star",
        };
        println!("{alpha:>6} {c:>14.1} {s:>14.1} {opt:>8}");
    }

    // Player costs under ownership.
    println!("\nplayer costs in the center-owned star at alpha = 3:");
    let star = OwnedNetwork::from_graph(&classic::star(n));
    let dm = DistanceMatrix::build(&star.graph().to_csr());
    println!(
        "  center: {:.1}  (buys {} edges)",
        star.player_cost(&dm, 0, 3.0),
        star.bought_count(0)
    );
    println!(
        "  leaf:   {:.1}  (buys {} edges)",
        star.player_cost(&dm, 1, 3.0),
        star.bought_count(1)
    );
    println!(
        "  1-deviation stable at alpha = 3: {}",
        is_single_deviation_stable(&star, 3.0)
    );

    // Greedy dynamics from a cycle.
    println!("\ngreedy alpha-dynamics from C_{n} at alpha = 1.5:");
    let start = OwnedNetwork::from_graph(&classic::cycle(n));
    let (stable, steps) = greedy_dynamics(&start, 1.5, 500);
    let dm2 = DistanceMatrix::build(&stable.graph().to_csr());
    println!(
        "  converged after {steps} deviations: m = {}, diameter = {:?}",
        stable.graph().m(),
        dm2.diameter()
    );

    // The transfer: one swap equilibrium, every alpha.
    println!("\nthe paper's pitch — one parameter-free equilibrium, every alpha:");
    let witness = bncg::constructions::fig3::repaired_fig3();
    assert!(SumGame::is_equilibrium(&witness));
    println!("  repaired fig3 (n = 17, diameter 3) social-cost ratios:");
    for (alpha, ratio) in alpha_sweep(&witness, &[0.25, 1.0, 4.0, 64.0, 4096.0]) {
        println!("    alpha = {alpha:>7}: SC/OPT = {ratio:.3}");
    }
    println!("\n  every ratio within a small constant — no per-alpha analysis needed.");
}
