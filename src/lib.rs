//! # bncg — Basic Network Creation Games
//!
//! A comprehensive Rust reproduction of *"Basic Network Creation Games"*
//! (Noga Alon, Erik D. Demaine, MohammadTaghi Hajiaghayi, Tom Leighton —
//! SPAA 2010): the swap-based network creation game, its sum/max swap
//! equilibria, every concrete construction in the paper, the classical
//! α-game baseline, swap dynamics, and the analysis toolkit behind the
//! paper's theorems.
//!
//! This facade crate re-exports the workspace members under one roof:
//!
//! * [`graph`] — graph substrate (BFS/APSP, generators, enumeration, …)
//! * [`algebra`] — Abelian groups, Cayley graphs, sumsets, projective planes
//! * [`game`] — the paper's contribution: swap moves and equilibrium theory
//! * [`alpha`] — the classical α-parameterized game baseline
//! * [`constructions`] — Figures 2–4 and friends, programmatically
//! * [`analysis`] — distance uniformity, ball growth, skew triples
//! * [`dynamics`] — better/best-response simulation engine and tree census
//! * [`telemetry`] — counters, histograms, phase timers, snapshots (no-ops
//!   unless the `telemetry` feature is on — the default)
//!
//! ## Quickstart
//!
//! ```
//! use bncg::prelude::*;
//!
//! // Theorem 5 says a diameter-3 sum equilibrium exists. Our reproduction
//! // found that the paper's printed Figure 3 witness admits an improving
//! // swap (see `constructions::fig3` for the erratum), and repaired it:
//! let printed = bncg::constructions::fig3::fig3_graph();
//! assert!(!SumGame::analyze(&printed).is_equilibrium());
//!
//! let repaired = bncg::constructions::fig3::repaired_fig3();
//! let eq = SumGame::analyze(&repaired);
//! assert!(eq.is_equilibrium());
//! assert_eq!(eq.diameter(), Some(3));
//! ```

pub mod conformance;

pub use bncg_algebra as algebra;
pub use bncg_alpha as alpha;
pub use bncg_analysis as analysis;
pub use bncg_constructions as constructions;
pub use bncg_core as game;
pub use bncg_dynamics as dynamics;
pub use bncg_graph as graph;
pub use bncg_telemetry as telemetry;
pub use bncg_testkit as testkit;

/// Convenience re-exports covering the most common workflow: build a graph,
/// analyze its equilibrium status, run dynamics.
pub mod prelude {
    pub use bncg_core::equilibrium::{MaxGame, SumGame};
    pub use bncg_core::stability::{is_deletion_critical, is_insertion_stable};
    pub use bncg_dynamics::engine::{DynamicsConfig, Schedule, SwapDynamics};
    pub use bncg_dynamics::rounds::{RoundConfig, RoundDynamics};
    pub use bncg_graph::{generators::classic, DistanceMatrix, Graph, V};
}
